//! Incremental model maintenance over mutation deltas (DESIGN.md §15).
//!
//! A from-scratch build scans the whole table once per tree level; this
//! module keeps an already-grown tree *split-identical* to that rebuild as
//! the base table churns, at a cost proportional to the churn. The
//! architecture follows Koc & Ré ("Incrementally Maintaining
//! Classification using an RDBMS", PAPERS.md): CC tables are pure sums,
//! so a mutation stream applies to them as signed `add_row`s.
//!
//! The cycle per maintenance round:
//!
//! 1. **Drain** the table's sequenced delta log through the session
//!    ([`scaleclass::Session::drain_deltas`]), which also invalidates every
//!    staged artifact and shared-catalog entry from earlier epochs.
//! 2. **Route** each signed event down the current tree to the leaf its
//!    row reaches, batching the images per leaf in a
//!    [`scaleclass::DeltaMap`] held against the session's budget lease
//!    (the map is applied and drained early whenever its modelled bytes
//!    would crowd the lease).
//! 3. **Apply** each leaf's batch to the retained CC table of every node
//!    on its root path — counts are sums, so the patched tables equal
//!    what a from-scratch rescan at the new epoch would count.
//! 4. **Re-decide** only where the deltas could matter: a node whose
//!    winner-vs-runner-up margin exceeds twice the conservative
//!    [`delta_score_bound`] keeps its split without re-scoring; everything
//!    else is re-decided *exactly* from its patched CC (still no server
//!    scan). Only nodes whose decision actually changed — or whose
//!    structure a patched CC can no longer describe (a multiway value set
//!    that changed, an emptied child, a child attribute set that shifted,
//!    an unroutable value, a rejected DELETE) — re-grow their subtree
//!    through the middleware, which is the only place the server is
//!    touched, and only under the re-grown subtree's predicates.
//!
//! Leaves never re-grown are just patched: class counts, rows, and the
//! majority class are updated in place from the parent's patched CC (for
//! immediate leaves) or the leaf's own (for scanned leaves).

use crate::grow::{
    apply_exact_counts, decide, derive_children, grow_inner, immediate_leaf, Decision, GrowConfig,
    GrowState,
};
use crate::split::{best_two_splits, delta_score_bound, Split};
use crate::tree::{DecisionTree, NodeState};
use scaleclass::{CcRequest, CountsTable, DeltaMap, Lineage, Middleware, MwResult, NodeId};
use scaleclass_sqldb::Pred;
use std::collections::{HashMap, HashSet};

/// Client-side per-node state retained by a maintainable grow: the exact
/// CC table the node was decided from, the attribute set it was scored
/// over, and the winner/runner-up scores behind the margin trigger.
#[derive(Debug, Clone)]
pub struct RetainedNode {
    /// The exact counts table the node's decision came from, patched in
    /// place as deltas arrive.
    pub cc: CountsTable,
    /// Attribute columns the node was scored over.
    pub attrs: Vec<u16>,
    /// The winning split's score (`None` when no non-degenerate candidate
    /// existed — the node decided leaf).
    pub best_score: Option<f64>,
    /// Best score among candidates inducing a different partition
    /// (`None` when the winner was the only candidate).
    pub runner_score: Option<f64>,
}

/// A grown tree plus the retained per-node state that lets [`maintain`]
/// keep it split-identical to a from-scratch rebuild under churn.
pub struct MaintainableTree {
    /// The current tree. Re-grown subtrees leave their replaced nodes in
    /// the arena as unreachable garbage; every root walk ignores them.
    pub tree: DecisionTree,
    retained: HashMap<usize, RetainedNode>,
    config: GrowConfig,
}

impl MaintainableTree {
    /// The grow configuration the tree is maintained under.
    pub fn config(&self) -> &GrowConfig {
        &self.config
    }

    /// Number of nodes with retained CC tables.
    pub fn retained_nodes(&self) -> usize {
        self.retained.len()
    }

    /// Client-side bytes modelled by the retained CC tables.
    pub fn retained_bytes(&self) -> u64 {
        self.retained
            .values()
            .fold(0u64, |acc, r| acc.saturating_add(r.cc.memory_bytes()))
    }
}

/// Grow a tree through the middleware exactly like
/// [`crate::grow::grow_with_middleware`], additionally retaining each
/// node's CC table and margins so the result can be maintained
/// incrementally. Sampled-accepted nodes retain nothing (their counts are
/// estimates); maintenance re-grows them on first touch, so exact
/// counting (`sampled_counting` off) is the economical mode here.
pub fn grow_maintainable(mw: &mut Middleware, config: &GrowConfig) -> MwResult<MaintainableTree> {
    let mut retained = HashMap::new();
    let out = grow_inner(mw, config, Some(&mut retained))?;
    Ok(MaintainableTree {
        tree: out.tree,
        retained,
        config: config.clone(),
    })
}

/// What one [`maintain`] round did.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct MaintainOutcome {
    /// Signed row events drained and routed.
    pub events_routed: u64,
    /// Nodes whose subtree was re-grown (decision changed, or the
    /// structure could not be patched).
    pub nodes_resplit: u64,
    /// Leaves patched in place (class counts / majority updated, no
    /// scan).
    pub leaf_patches: u64,
    /// Internal nodes whose margin exceeded the delta bound, skipping
    /// even the exact client-side re-score.
    pub margin_skips: u64,
    /// Counts requests issued to the middleware by re-grows.
    pub requests_issued: u64,
}

/// One maintenance round: drain the delta log, patch retained CC tables,
/// and re-grow exactly the subtrees whose decisions the deltas could have
/// flipped. After it returns, `model.tree` is split-identical to a
/// from-scratch rebuild at the drained epoch (the equivalence property
/// suite pins this across backends, staging modes, and worker counts).
pub fn maintain(mw: &mut Middleware, model: &mut MaintainableTree) -> MwResult<MaintainOutcome> {
    let mut out = MaintainOutcome::default();
    let (events, _epoch) = mw.drain_deltas();
    if events.is_empty() {
        return Ok(out);
    }
    let MaintainableTree {
        tree,
        retained,
        config,
    } = model;
    let class_col = mw.class_col();
    let arity = mw.schema().arity();

    // Route + apply (steps 2–3). The map is bounded by the slack the
    // session lease leaves over its staged bytes; routing a churn bigger
    // than that just applies and drains the buckets in several waves.
    let lease_slack = mw
        .lease_bytes()
        .saturating_sub(mw.staged_mem_bytes())
        .max(1);
    let mut map = DeltaMap::new(arity);
    // |Δ| routed through each node (leaf buckets plus every ancestor).
    let mut touched: HashMap<usize, u64> = HashMap::new();
    // Partitioned nodes a row could not be routed past (a multiway value
    // unseen when the split was chosen): their value set changed, re-grow.
    let mut stuck: HashSet<usize> = HashSet::new();
    // Nodes where a DELETE failed to validate against the retained CC —
    // the retained state cannot be trusted; re-grow from a fresh scan.
    let mut corrupt: HashSet<usize> = HashSet::new();
    for ev in &events {
        out.events_routed += 1;
        let mut idx = 0usize;
        let bucket = loop {
            *touched.entry(idx).or_insert(0) += 1;
            let node = tree.node(idx);
            match &node.state {
                NodeState::Leaf { .. } | NodeState::Active => break idx,
                NodeState::Partitioned { split } => {
                    let next = match split {
                        Split::Binary { attr, value } => {
                            if ev.row[*attr as usize] == *value {
                                node.children.first()
                            } else {
                                node.children.get(1)
                            }
                        }
                        Split::Multiway { attr, values } => values
                            .iter()
                            .position(|&v| v == ev.row[*attr as usize])
                            .and_then(|i| node.children.get(i)),
                    };
                    match next {
                        Some(&c) => idx = c,
                        None => {
                            stuck.insert(idx);
                            break idx;
                        }
                    }
                }
            }
        };
        map.record(NodeId(bucket as u64), ev.sign, &ev.row)?;
        if map.modelled_bytes() >= lease_slack {
            apply_map(&mut map, tree, retained, class_col, &mut corrupt);
        }
    }
    apply_map(&mut map, tree, retained, class_col, &mut corrupt);
    #[cfg(debug_assertions)]
    map.assert_shadow_accounting();

    // Re-decide (step 4): walk touched nodes top-down; untouched subtrees
    // hold exactly the rows they held before, so their decisions stand.
    let mut state = GrowState::default();
    let mut stack = vec![0usize];
    while let Some(idx) = stack.pop() {
        let magnitude = match touched.get(&idx) {
            Some(&m) => m,
            None => continue,
        };
        if corrupt.contains(&idx) {
            regrow_via_request(mw, tree, retained, &mut state, idx, &mut out)?;
            continue;
        }
        let Some(entry) = retained.get(&idx) else {
            // Touched but never scanned: a sampled-accepted node (no
            // exact CC to patch) — or an immediate leaf whose parent was
            // somehow not visited, which the top-down walk precludes.
            regrow_via_request(mw, tree, retained, &mut state, idx, &mut out)?;
            continue;
        };
        let is_leaf = tree.node(idx).is_leaf();
        if is_leaf {
            // A scanned leaf: re-decide exactly from the patched CC.
            match decide(&entry.cc, &entry.attrs, tree.node(idx).depth, config) {
                Decision::Leaf { class } => {
                    let node = tree.node_mut(idx);
                    node.state = NodeState::Leaf { class };
                    node.class_counts = entry.cc.class_distribution().collect();
                    node.rows = entry.cc.total();
                    out.leaf_patches += 1;
                }
                Decision::Split(_) => {
                    regrow_from_cc(mw, tree, retained, config, &mut state, idx, &mut out)?;
                }
            }
            continue;
        }
        if stuck.contains(&idx) {
            regrow_from_cc(mw, tree, retained, config, &mut state, idx, &mut out)?;
            continue;
        }
        let split = match &tree.node(idx).state {
            NodeState::Partitioned { split } => split.clone(),
            // Active cannot appear outside the pump; a leaf was handled.
            _ => continue,
        };
        // Margin trigger: skip even the client-side re-score when the
        // stored winner-vs-runner-up margin (and the winner's clearance
        // over the leaf threshold) exceeds what `magnitude` events could
        // have moved any score.
        let nclasses = entry.cc.distinct_classes() as u64;
        let bound = delta_score_bound(config.scorer, nclasses, entry.cc.total(), magnitude);
        let margin_safe = match (bound, entry.best_score) {
            (Some(b), Some(best)) => {
                let runner_clear = entry.runner_score.map_or(true, |r| best - r > 2.0 * b);
                let leaf_clear = best - b > 1e-12;
                let still_multi = entry.cc.distinct_classes() > 1
                    && entry.cc.total() >= config.min_rows
                    && !entry.attrs.is_empty();
                runner_clear && leaf_clear && still_multi
            }
            _ => false,
        };
        if margin_safe {
            out.margin_skips += 1;
            // The stored margins are now stale by up to `bound`; shrink
            // them so successive skips stay conservative.
            if let (Some(b), Some(entry)) = (bound, retained.get_mut(&idx)) {
                if let Some(best) = entry.best_score.as_mut() {
                    *best -= b;
                }
                if let Some(runner) = entry.runner_score.as_mut() {
                    *runner += b;
                }
            }
        } else {
            // Exact re-decide from the patched CC (no scan).
            let decision = decide(&entry.cc, &entry.attrs, tree.node(idx).depth, config);
            let changed = match &decision {
                Decision::Leaf { .. } => true,
                Decision::Split(s) => *s != split,
            };
            if changed {
                regrow_from_cc(mw, tree, retained, config, &mut state, idx, &mut out)?;
                continue;
            }
            // Split kept: refresh the stored margins from the patched CC
            // so future rounds start tight.
            let (best_score, runner_score) =
                match best_two_splits(&entry.cc, &entry.attrs, config.split_kind, config.scorer) {
                    Some((best, runner)) => (Some(best.score), runner),
                    None => (None, None),
                };
            if let Some(e) = retained.get_mut(&idx) {
                e.best_score = best_score;
                e.runner_score = runner_score;
            }
        }
        // The split survives. Check that the patched CC still induces the
        // same children structurally, patch immediate-leaf children, and
        // descend into touched subtrees.
        let entry = retained.get(&idx).expect("entry survives margin path");
        let specs = derive_children(&entry.cc, &split, &entry.attrs);
        let children = tree.node(idx).children.clone();
        if specs.len() != children.len() || specs.iter().any(|s| s.rows == 0) {
            // An emptied child: from scratch this split is degenerate (or
            // a multiway arm vanished) and a different decision wins.
            regrow_from_cc(mw, tree, retained, config, &mut state, idx, &mut out)?;
            continue;
        }
        {
            let node = tree.node_mut(idx);
            node.class_counts = entry.cc.class_distribution().collect();
            node.rows = entry.cc.total();
        }
        let parent_total = entry.cc.total();
        let specs_attrs_changed: Vec<bool> = specs
            .iter()
            .zip(&children)
            .map(|(spec, &c)| match retained.get(&c) {
                Some(r) => r.attrs != spec.attrs,
                None => false,
            })
            .collect();
        for ((spec, &child), attrs_changed) in specs.iter().zip(&children).zip(specs_attrs_changed)
        {
            let child_touched = touched.contains_key(&child);
            if attrs_changed {
                // The child's informative attribute set shifted (e.g. the
                // ≠-branch kept/dropped the split attribute as its
                // cardinality crossed 2): every decision beneath it was
                // scored over the wrong columns. Rescan.
                regrow_child(
                    mw,
                    tree,
                    retained,
                    &mut state,
                    child,
                    spec,
                    parent_total,
                    &mut out,
                )?;
                continue;
            }
            let child_is_immediate = retained.get(&child).is_none();
            if child_is_immediate && child_touched {
                let depth = tree.node(child).depth;
                if immediate_leaf(spec, depth, config) {
                    let class = spec
                        .class_counts
                        .iter()
                        .max_by_key(|&&(_, n)| n)
                        .map(|&(c, _)| c)
                        .unwrap_or(0);
                    let node = tree.node_mut(child);
                    node.state = NodeState::Leaf { class };
                    node.class_counts = spec.class_counts.clone();
                    node.rows = spec.rows;
                    out.leaf_patches += 1;
                } else {
                    // The patched distribution no longer terminates: the
                    // child needs its own counts and decision.
                    regrow_child(
                        mw,
                        tree,
                        retained,
                        &mut state,
                        child,
                        spec,
                        parent_total,
                        &mut out,
                    )?;
                }
                continue;
            }
            if child_touched {
                stack.push(child);
            }
        }
    }

    // Pump: service every re-grow request, replaying the grow loop's
    // exact-path logic (and retaining the fresh CC tables) until the
    // frontier settles. Sampled fulfilments are escalated: maintenance
    // decisions must come from exact counts.
    while mw.has_pending() {
        let batch = mw.process_next_batch()?;
        for f in batch {
            let idx = f.node.0 as usize;
            if f.sample.is_some() {
                let escalated = mw.escalate(f.node);
                debug_assert!(escalated, "sampled fulfilment must be outstanding");
                out.requests_issued += 1;
                continue;
            }
            let lineage = state
                .lineages
                .remove(&idx)
                .expect("re-grown node was requested");
            let attrs = state.attrs_of.remove(&idx).expect("attrs recorded");
            out.requests_issued += apply_exact_counts(
                mw,
                tree,
                idx,
                &f.cc,
                Some(f.source),
                &lineage,
                &attrs,
                config,
                &mut state,
                Some(retained),
            )?;
        }
    }
    mw.note_resplits(out.nodes_resplit);
    Ok(out)
}

/// Apply and drain every bucket: each leaf batch patches the retained CC
/// of every node on its root path (inserts first, so a same-round
/// insert+delete of one image nets out without a transient underflow).
fn apply_map(
    map: &mut DeltaMap,
    tree: &DecisionTree,
    retained: &mut HashMap<usize, RetainedNode>,
    class_col: u16,
    corrupt: &mut HashSet<usize>,
) {
    for (leaf, delta) in map.drain() {
        let mut path = Vec::new();
        let mut at = Some(leaf.0 as usize);
        while let Some(i) = at {
            path.push(i);
            at = tree.node(i).parent;
        }
        for &i in &path {
            let Some(entry) = retained.get_mut(&i) else {
                continue;
            };
            for row in delta.inserted_rows() {
                entry.cc.add_row(row, &entry.attrs, class_col);
            }
            for row in delta.deleted_rows() {
                if !entry.cc.remove_row(row, &entry.attrs, class_col) {
                    corrupt.insert(i);
                }
            }
        }
    }
}

/// Remove the retained entries of every node currently beneath `idx`
/// (exclusive) and cut them loose: the subtree is about to be replaced,
/// and the replaced arena nodes become unreachable garbage.
fn clear_subtree(tree: &mut DecisionTree, retained: &mut HashMap<usize, RetainedNode>, idx: usize) {
    let mut stack: Vec<usize> = tree.node(idx).children.clone();
    while let Some(i) = stack.pop() {
        retained.remove(&i);
        stack.extend(tree.node(i).children.iter().copied());
    }
    tree.node_mut(idx).children.clear();
}

/// Reconstruct the lineage of `idx` from its root path (each edge carries
/// its backend predicate).
fn lineage_of(tree: &DecisionTree, idx: usize) -> Lineage {
    let mut path = Vec::new();
    let mut at = Some(idx);
    while let Some(i) = at {
        path.push(i);
        at = tree.node(i).parent;
    }
    path.reverse();
    let mut lineage = Lineage::root(NodeId(path[0] as u64));
    for &i in &path[1..] {
        let edge = tree.node(i).edge.expect("non-root node has an edge");
        let pred = match edge {
            crate::tree::Edge::Eq { attr, value } => Pred::Eq {
                col: attr as usize,
                value,
            },
            crate::tree::Edge::NotEq { attr, value } => Pred::NotEq {
                col: attr as usize,
                value,
            },
        };
        lineage = lineage.child(NodeId(i as u64), pred);
    }
    lineage
}

/// Re-grow the subtree under `idx` from its *patched* CC table: no scan
/// for `idx` itself — its decision comes straight from the patched
/// counts — but children that need their own counts are enqueued.
fn regrow_from_cc(
    mw: &mut Middleware,
    tree: &mut DecisionTree,
    retained: &mut HashMap<usize, RetainedNode>,
    config: &GrowConfig,
    state: &mut GrowState,
    idx: usize,
    out: &mut MaintainOutcome,
) -> MwResult<()> {
    let entry = retained
        .remove(&idx)
        .expect("regrow_from_cc needs a retained CC");
    clear_subtree(tree, retained, idx);
    let lineage = lineage_of(tree, idx);
    let source = tree.node(idx).source;
    out.nodes_resplit += 1;
    out.requests_issued += apply_exact_counts(
        mw,
        tree,
        idx,
        &entry.cc,
        source,
        &lineage,
        &entry.attrs,
        config,
        state,
        Some(retained),
    )?;
    Ok(())
}

/// Re-grow a child node through a fresh counts request (its retained
/// state is unusable or absent): mark it active and enqueue.
#[allow(clippy::too_many_arguments)]
fn regrow_child(
    mw: &mut Middleware,
    tree: &mut DecisionTree,
    retained: &mut HashMap<usize, RetainedNode>,
    state: &mut GrowState,
    child: usize,
    spec: &crate::grow::ChildSpec,
    parent_rows: u64,
    out: &mut MaintainOutcome,
) -> MwResult<()> {
    retained.remove(&child);
    clear_subtree(tree, retained, child);
    {
        let node = tree.node_mut(child);
        node.state = NodeState::Active;
        node.class_counts = spec.class_counts.clone();
        node.rows = spec.rows;
    }
    let lineage = lineage_of(tree, child);
    let req = CcRequest {
        lineage: lineage.clone(),
        attrs: spec.attrs.clone(),
        class_col: mw.class_col(),
        rows: spec.rows,
        parent_rows,
        parent_cards: spec.parent_cards.clone(),
    };
    state.lineages.insert(child, lineage);
    state.attrs_of.insert(child, spec.attrs.clone());
    mw.enqueue(req)?;
    out.nodes_resplit += 1;
    out.requests_issued += 1;
    Ok(())
}

/// Re-grow `idx` through a fresh counts request when no usable retained
/// CC exists (sampled-accepted node, or a corrupt delta application).
fn regrow_via_request(
    mw: &mut Middleware,
    tree: &mut DecisionTree,
    retained: &mut HashMap<usize, RetainedNode>,
    state: &mut GrowState,
    idx: usize,
    out: &mut MaintainOutcome,
) -> MwResult<()> {
    let attrs = retained
        .remove(&idx)
        .map(|r| r.attrs)
        .unwrap_or_else(|| mw.attrs().to_vec());
    clear_subtree(tree, retained, idx);
    let rows = tree.node(idx).rows;
    let parent_rows = tree
        .node(idx)
        .parent
        .map(|p| tree.node(p).rows)
        .unwrap_or_else(|| mw.table_rows());
    let parent_cards: Vec<u64> = attrs
        .iter()
        .map(|&a| u64::from(mw.schema().column(a as usize).cardinality()))
        .collect();
    tree.node_mut(idx).state = NodeState::Active;
    let lineage = lineage_of(tree, idx);
    let req = CcRequest {
        lineage: lineage.clone(),
        attrs: attrs.clone(),
        class_col: mw.class_col(),
        rows,
        parent_rows,
        parent_cards,
    };
    state.lineages.insert(idx, lineage);
    state.attrs_of.insert(idx, attrs);
    mw.enqueue(req)?;
    out.nodes_resplit += 1;
    out.requests_issued += 1;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::trees_same_splits;
    use crate::grow::grow_with_middleware;
    use scaleclass::MiddlewareConfig;
    use scaleclass_sqldb::{Database, Schema};

    const COLS: [(&str, u16); 4] = [("a", 3), ("b", 2), ("noise", 3), ("class", 2)];

    fn db_from_rows(rows: &[[u16; 4]]) -> Database {
        let mut db = Database::new();
        db.create_table("d", Schema::from_pairs(&COLS)).unwrap();
        for r in rows {
            db.insert("d", r).unwrap();
        }
        db
    }

    fn seed_rows(copies: u16) -> Vec<[u16; 4]> {
        // class = (a == 1) XOR b, with a three-valued noise column.
        let mut rows = Vec::new();
        for i in 0..copies {
            for a in 0..3u16 {
                for b in 0..2u16 {
                    let class = (u16::from(a == 1)) ^ b;
                    rows.push([a, b, i % 3, class]);
                }
            }
        }
        rows
    }

    fn maintained_mw(rows: &[[u16; 4]]) -> Middleware {
        let config = MiddlewareConfig::builder().deltas(true).build();
        Middleware::new(db_from_rows(rows), "d", "class", config).unwrap()
    }

    /// Grow a fresh tree over `rows` and assert it is split-identical to
    /// the maintained tree.
    fn assert_matches_rebuild(model: &MaintainableTree, rows: &[[u16; 4]]) {
        let mut mw = Middleware::new(
            db_from_rows(rows),
            "d",
            "class",
            MiddlewareConfig::default(),
        )
        .unwrap();
        let fresh = grow_with_middleware(&mut mw, model.config()).unwrap();
        assert!(
            trees_same_splits(&model.tree, &fresh.tree),
            "maintained tree diverged from a from-scratch rebuild"
        );
    }

    #[test]
    fn grow_maintainable_matches_plain_grow_and_retains() {
        let rows = seed_rows(4);
        let mut mw = maintained_mw(&rows);
        let model = grow_maintainable(&mut mw, &GrowConfig::default()).unwrap();
        assert_matches_rebuild(&model, &rows);
        // Every non-immediate node retains a CC table; at minimum the root.
        assert!(model.retained_nodes() >= 1);
        assert!(model.retained_bytes() > 0);
    }

    #[test]
    fn maintain_without_mutations_is_a_noop() {
        let rows = seed_rows(4);
        let mut mw = maintained_mw(&rows);
        let mut model = grow_maintainable(&mut mw, &GrowConfig::default()).unwrap();
        let before = model.tree.len();
        let out = maintain(&mut mw, &mut model).unwrap();
        assert_eq!(out, MaintainOutcome::default());
        assert_eq!(model.tree.len(), before);
    }

    #[test]
    fn inserts_patch_to_rebuild_equivalence() {
        let mut rows = seed_rows(4);
        let mut mw = maintained_mw(&rows);
        let mut model = grow_maintainable(&mut mw, &GrowConfig::default()).unwrap();
        for r in [[0u16, 0, 0, 0], [1, 1, 2, 1], [2, 1, 1, 1]] {
            mw.insert_row(&r).unwrap();
            rows.push(r);
        }
        let out = maintain(&mut mw, &mut model).unwrap();
        assert_eq!(out.events_routed, 3);
        assert_matches_rebuild(&model, &rows);
    }

    #[test]
    fn deletes_patch_to_rebuild_equivalence() {
        let mut rows = seed_rows(4);
        let mut mw = maintained_mw(&rows);
        let mut model = grow_maintainable(&mut mw, &GrowConfig::default()).unwrap();
        let pred = Pred::And(vec![
            Pred::Eq { col: 0, value: 2 },
            Pred::Eq { col: 2, value: 0 },
        ]);
        let removed = mw.delete_where(&pred).unwrap();
        assert!(removed > 0);
        rows.retain(|r| !(r[0] == 2 && r[2] == 0));
        let out = maintain(&mut mw, &mut model).unwrap();
        assert_eq!(out.events_routed, removed);
        assert_matches_rebuild(&model, &rows);
    }

    #[test]
    fn updates_patch_to_rebuild_equivalence() {
        let mut rows = seed_rows(4);
        let mut mw = maintained_mw(&rows);
        let mut model = grow_maintainable(&mut mw, &GrowConfig::default()).unwrap();
        // Flip the class of every (a=0, b=0) row: the rebuilt tree must
        // re-decide the affected branch.
        let pred = Pred::And(vec![
            Pred::Eq { col: 0, value: 0 },
            Pred::Eq { col: 1, value: 0 },
        ]);
        let changed = mw.update_where(&pred, &[(3, 1)]).unwrap();
        assert!(changed > 0);
        for r in rows.iter_mut() {
            if r[0] == 0 && r[1] == 0 {
                r[3] = 1;
            }
        }
        let out = maintain(&mut mw, &mut model).unwrap();
        // An update logs a delete + an insert per row.
        assert_eq!(out.events_routed, changed * 2);
        assert_matches_rebuild(&model, &rows);
    }

    #[test]
    fn small_churn_margin_skips_the_root() {
        // class == (a == 1): a 240-row table where the root split's margin
        // dwarfs what one inserted row can move.
        let mut rows = Vec::new();
        for i in 0..40u16 {
            for a in 0..3u16 {
                rows.push([a, i % 2, i % 3, u16::from(a == 1)]);
            }
        }
        let mut mw = maintained_mw(&rows);
        let mut model = grow_maintainable(&mut mw, &GrowConfig::default()).unwrap();
        let noise = [1u16, 0, 0, 0];
        mw.insert_row(&noise).unwrap();
        rows.push(noise);
        let out = maintain(&mut mw, &mut model).unwrap();
        assert!(out.margin_skips >= 1, "root margin should skip re-scoring");
        assert_matches_rebuild(&model, &rows);
    }

    #[test]
    fn churn_bigger_than_margin_resplits() {
        // Start with class == (a == 1); delete every a=1 row and insert
        // rows where class == b instead. The a-split becomes worthless and
        // the rebuilt concept is b — the root must re-split.
        let mut rows = Vec::new();
        for i in 0..12u16 {
            for a in 0..3u16 {
                for b in 0..2u16 {
                    rows.push([a, b, i % 3, u16::from(a == 1)]);
                }
            }
        }
        let mut mw = maintained_mw(&rows);
        let mut model = grow_maintainable(&mut mw, &GrowConfig::default()).unwrap();
        let removed = mw.delete_where(&Pred::Eq { col: 0, value: 1 }).unwrap();
        assert!(removed > 0);
        rows.retain(|r| r[0] != 1);
        for i in 0..12u16 {
            for a in [0u16, 2] {
                let r = [a, 1, i % 3, 1];
                mw.insert_row(&r).unwrap();
                rows.push(r);
            }
        }
        let out = maintain(&mut mw, &mut model).unwrap();
        assert!(out.nodes_resplit >= 1, "concept flip must re-split");
        assert_matches_rebuild(&model, &rows);
        // The new root split is on b, not a.
        match &model.tree.root().unwrap().state {
            NodeState::Partitioned { split } => assert_eq!(split.attr(), 1),
            other => panic!("root should have re-split, got {other:?}"),
        }
    }

    #[test]
    fn multiway_maintenance_handles_new_and_vanished_values() {
        let cfg = GrowConfig {
            split_kind: crate::split::SplitKind::Multiway,
            ..GrowConfig::default()
        };
        let mut rows = seed_rows(4);
        let mut mw = maintained_mw(&rows);
        let mut model = grow_maintainable(&mut mw, &cfg).unwrap();
        // Remove every a=2 row (a value arm vanishes) …
        mw.delete_where(&Pred::Eq { col: 0, value: 2 }).unwrap();
        rows.retain(|r| r[0] != 2);
        let out = maintain(&mut mw, &mut model).unwrap();
        assert!(out.events_routed > 0);
        assert_matches_rebuild(&model, &rows);
        // … then bring it back (an unrouteable value re-appears).
        for b in 0..2u16 {
            for n in 0..3u16 {
                let r = [2u16, b, n, b];
                mw.insert_row(&r).unwrap();
                rows.push(r);
            }
        }
        maintain(&mut mw, &mut model).unwrap();
        assert_matches_rebuild(&model, &rows);
    }

    #[test]
    fn repeated_rounds_stay_equivalent() {
        let mut rows = seed_rows(3);
        let mut mw = maintained_mw(&rows);
        let mut model = grow_maintainable(&mut mw, &GrowConfig::default()).unwrap();
        for round in 0..5u16 {
            let r = [round % 3, round % 2, round % 3, (round % 2) ^ 1];
            mw.insert_row(&r).unwrap();
            rows.push(r);
            if round % 2 == 0 {
                let pred = Pred::And(vec![
                    Pred::Eq {
                        col: 0,
                        value: round % 3,
                    },
                    Pred::Eq {
                        col: 2,
                        value: round % 3,
                    },
                ]);
                let victims: Vec<[u16; 4]> = rows
                    .iter()
                    .filter(|r| r[0] == round % 3 && r[2] == round % 3)
                    .copied()
                    .collect();
                let removed = mw.delete_where(&pred).unwrap();
                assert_eq!(removed as usize, victims.len());
                rows.retain(|r| !(r[0] == round % 3 && r[2] == round % 3));
            }
            maintain(&mut mw, &mut model).unwrap();
            assert_matches_rebuild(&model, &rows);
        }
    }
}
