//! Decision rules.
//!
//! §2.1: "The leaves, represented as decision rules, are more easily
//! understood by domain experts." This module extracts the rule list of a
//! grown tree — one rule per leaf, the conjunction of edge predicates on
//! its root path — with support/confidence, and can classify through the
//! rule list (provably equivalent to the tree).

use crate::tree::{DecisionTree, Edge};
use scaleclass_sqldb::Code;
use std::fmt;

/// One decision rule: `IF conjuncts THEN class`.
#[derive(Debug, Clone, PartialEq)]
pub struct Rule {
    /// Edge predicates from the root, in path order.
    pub conjuncts: Vec<Edge>,
    /// Predicted class.
    pub class: Code,
    /// Rows reaching the leaf.
    pub support: u64,
    /// Fraction of those rows in the predicted class.
    pub confidence: f64,
}

impl Rule {
    /// Does the rule's antecedent cover this row?
    pub fn covers(&self, row: &[Code]) -> bool {
        self.conjuncts.iter().all(|edge| match *edge {
            Edge::Eq { attr, value } => row[attr as usize] == value,
            Edge::NotEq { attr, value } => row[attr as usize] != value,
        })
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "IF ")?;
        if self.conjuncts.is_empty() {
            write!(f, "TRUE")?;
        } else {
            for (i, c) in self.conjuncts.iter().enumerate() {
                if i > 0 {
                    write!(f, " AND ")?;
                }
                write!(f, "{c}")?;
            }
        }
        write!(
            f,
            " THEN class={} (support {}, confidence {:.1}%)",
            self.class,
            self.support,
            self.confidence * 100.0
        )
    }
}

/// An ordered rule list extracted from a tree (leaf order = tree
/// pre-order; rules are mutually exclusive and exhaustive over values the
/// tree has seen).
#[derive(Debug, Clone, Default)]
pub struct RuleList {
    /// Rules in leaf pre-order.
    pub rules: Vec<Rule>,
    /// Majority class at the root (fallback for rows no rule covers —
    /// only possible with unseen multiway values).
    pub default_class: Code,
}

impl RuleList {
    /// First covering rule's class, else the default.
    pub fn classify(&self, row: &[Code]) -> Code {
        self.rules
            .iter()
            .find(|r| r.covers(row))
            .map(|r| r.class)
            .unwrap_or(self.default_class)
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Is the list empty?
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }
}

impl fmt::Display for RuleList {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in &self.rules {
            writeln!(f, "{r}")?;
        }
        writeln!(f, "ELSE class={}", self.default_class)
    }
}

/// Extract the rule list of a grown tree.
pub fn extract_rules(tree: &DecisionTree) -> RuleList {
    let mut list = RuleList {
        rules: Vec::new(),
        default_class: tree.root().map(|r| r.majority_class()).unwrap_or(0),
    };
    let Some(root) = tree.root() else {
        return list;
    };
    let mut stack: Vec<(usize, Vec<Edge>)> = vec![(root.id, Vec::new())];
    while let Some((id, path)) = stack.pop() {
        let node = tree.node(id);
        if node.children.is_empty() {
            let class = node.majority_class();
            let in_class = node
                .class_counts
                .iter()
                .find(|&&(c, _)| c == class)
                .map(|&(_, n)| n)
                .unwrap_or(0);
            list.rules.push(Rule {
                conjuncts: path,
                class,
                support: node.rows,
                confidence: if node.rows == 0 {
                    0.0
                } else {
                    in_class as f64 / node.rows as f64
                },
            });
            continue;
        }
        // Reverse order so pre-order pops left-to-right.
        for &child in node.children.iter().rev() {
            let mut p = path.clone();
            if let Some(edge) = tree.node(child).edge {
                p.push(edge);
            }
            stack.push((child, p));
        }
    }
    list
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grow::GrowConfig;
    use crate::inmemory::grow_in_memory;

    fn and_tree() -> DecisionTree {
        let mut rows = Vec::new();
        for _ in 0..8 {
            for a in 0..2u16 {
                for b in 0..2u16 {
                    rows.extend_from_slice(&[a, b, a & b]);
                }
            }
        }
        grow_in_memory(&rows, 3, 2, &[0, 1], &GrowConfig::default())
    }

    #[test]
    fn one_rule_per_leaf() {
        let tree = and_tree();
        let rules = extract_rules(&tree);
        assert_eq!(rules.len(), tree.leaves().count());
        assert!(!rules.is_empty());
        // Each rule is fully confident on this noiseless data.
        assert!(rules
            .rules
            .iter()
            .all(|r| (r.confidence - 1.0).abs() < 1e-12));
        // Supports sum to the data set size.
        let total: u64 = rules.rules.iter().map(|r| r.support).sum();
        assert_eq!(total, 32);
    }

    #[test]
    fn rule_list_classifies_like_the_tree() {
        let tree = and_tree();
        let rules = extract_rules(&tree);
        for a in 0..2u16 {
            for b in 0..2u16 {
                let row = [a, b, 0];
                assert_eq!(rules.classify(&row), tree.classify(&row), "({a},{b})");
            }
        }
    }

    #[test]
    fn rules_are_mutually_exclusive() {
        let tree = and_tree();
        let rules = extract_rules(&tree);
        for a in 0..2u16 {
            for b in 0..2u16 {
                let covering = rules.rules.iter().filter(|r| r.covers(&[a, b, 0])).count();
                assert_eq!(covering, 1, "row ({a},{b}) covered by {covering} rules");
            }
        }
    }

    #[test]
    fn display_reads_naturally() {
        let rules = extract_rules(&and_tree());
        let text = rules.to_string();
        assert!(text.contains("IF "));
        assert!(text.contains(" THEN class="));
        assert!(text.contains("ELSE class="));
    }

    #[test]
    fn empty_and_single_leaf_trees() {
        let empty = extract_rules(&DecisionTree::new());
        assert!(empty.is_empty());
        assert_eq!(empty.classify(&[0, 0, 0]), 0);

        let pure: Vec<u16> = (0..10).flat_map(|i| [i % 3, 1]).collect();
        let tree = grow_in_memory(&pure, 2, 1, &[0], &GrowConfig::default());
        let rules = extract_rules(&tree);
        assert_eq!(rules.len(), 1);
        assert!(rules.rules[0].conjuncts.is_empty(), "root rule is IF TRUE");
        assert_eq!(rules.classify(&[2, 0]), 1);
    }
}
