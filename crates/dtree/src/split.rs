//! Split scoring from CC tables.
//!
//! Everything here consumes only a [`CountsTable`] — never data rows —
//! which is the paper's Observation 1 in action. Supported measures: the
//! entropy/information-gain measure of ID3/CART used in the paper's
//! experiments (§3.1), plus Gini (CART) and gain ratio (C4.5), which the
//! paper notes its scheme supports equally.

use scaleclass::CountsTable;
use scaleclass_sqldb::Code;

/// Impurity / selection measure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scorer {
    /// Information gain over entropy (ID3; the paper's experiments).
    #[default]
    Entropy,
    /// Gini index reduction (CART).
    Gini,
    /// Gain ratio (C4.5): information gain normalized by split information.
    GainRatio,
    /// Chi-square statistic of the (child × class) contingency table
    /// (CHAID-style). Scores are not comparable across measures, only
    /// within one grow.
    ChiSquare,
}

/// Candidate split shapes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SplitKind {
    /// Binary partitions `A = v` vs `A = other` (what the paper grows:
    /// "only binary trees were grown from the data").
    #[default]
    Binary,
    /// One child per observed value of the attribute.
    Multiway,
}

/// A concrete chosen split.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Split {
    /// Children: `attr = value` and `attr <> value`.
    Binary {
        /// Split attribute column.
        attr: u16,
        /// Split value.
        value: Code,
    },
    /// One child per listed (observed) value.
    Multiway {
        /// Split attribute column.
        attr: u16,
        /// Observed values, ascending (one child each).
        values: Vec<Code>,
    },
}

impl Split {
    /// The attribute this split tests.
    pub fn attr(&self) -> u16 {
        match self {
            Split::Binary { attr, .. } | Split::Multiway { attr, .. } => *attr,
        }
    }
}

/// Entropy of a class-count distribution, in bits.
pub fn entropy(counts: impl IntoIterator<Item = u64>) -> f64 {
    let counts: Vec<u64> = counts.into_iter().filter(|&c| c > 0).collect();
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let total = total as f64;
    counts
        .iter()
        .map(|&c| {
            let p = c as f64 / total;
            -p * p.log2()
        })
        .sum()
}

/// Gini impurity of a class-count distribution.
pub fn gini(counts: impl IntoIterator<Item = u64>) -> f64 {
    let counts: Vec<u64> = counts.into_iter().collect();
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let total = total as f64;
    1.0 - counts
        .iter()
        .map(|&c| {
            let p = c as f64 / total;
            p * p
        })
        .sum::<f64>()
}

fn impurity(scorer: Scorer, counts: &[u64]) -> f64 {
    match scorer {
        Scorer::Entropy | Scorer::GainRatio => entropy(counts.iter().copied()),
        Scorer::Gini => gini(counts.iter().copied()),
        Scorer::ChiSquare => 0.0, // chi-square is not impurity-based
    }
}

/// Pearson chi-square statistic of a children × classes contingency table.
/// Zero when children and classes are independent; grows with association.
pub fn chi_square(children: &[Vec<u64>]) -> f64 {
    let nclasses = children.first().map_or(0, Vec::len);
    let total: u64 = children.iter().flatten().sum();
    if total == 0 || nclasses == 0 {
        return 0.0;
    }
    let class_totals: Vec<u64> = (0..nclasses)
        .map(|c| children.iter().map(|row| row[c]).sum())
        .collect();
    let mut chi2 = 0.0;
    for row in children {
        let row_total: u64 = row.iter().sum();
        for (c, &observed) in row.iter().enumerate() {
            let expected = row_total as f64 * class_totals[c] as f64 / total as f64;
            if expected > 0.0 {
                let d = observed as f64 - expected;
                chi2 += d * d / expected;
            }
        }
    }
    chi2
}

/// A scored candidate split.
#[derive(Debug, Clone, PartialEq)]
pub struct ScoredSplit {
    /// The candidate split.
    pub split: Split,
    /// The selection score (higher is better).
    pub score: f64,
}

/// Class-count vectors of the children a split induces, derived purely from
/// the CC table. Classes are aligned with `cc.class_distribution()` order.
fn children_class_counts(cc: &CountsTable, split: &Split) -> Vec<Vec<u64>> {
    let classes: Vec<(Code, u64)> = cc.class_distribution().collect();
    let class_pos = |c: Code| classes.iter().position(|&(cc_, _)| cc_ == c);
    match split {
        Split::Binary { attr, value } => {
            let mut left = vec![0u64; classes.len()];
            for (v, class, n) in cc.attr_vector(*attr) {
                if v == *value {
                    if let Some(i) = class_pos(class) {
                        left[i] += n;
                    }
                }
            }
            let right: Vec<u64> = classes
                .iter()
                .enumerate()
                .map(|(i, &(_, total))| total - left[i])
                .collect();
            vec![left, right]
        }
        Split::Multiway { attr, values } => {
            let mut children = vec![vec![0u64; classes.len()]; values.len()];
            for (v, class, n) in cc.attr_vector(*attr) {
                if let (Some(ci), Some(pos)) =
                    (values.iter().position(|&x| x == v), class_pos(class))
                {
                    children[ci][pos] += n;
                }
            }
            children
        }
    }
}

/// Score one candidate split against a node's CC table. Returns `None`
/// when the split is degenerate (an empty child).
pub fn score_split(cc: &CountsTable, split: &Split, scorer: Scorer) -> Option<ScoredSplit> {
    let total = cc.total();
    if total == 0 {
        return None;
    }
    let parent_counts: Vec<u64> = cc.class_distribution().map(|(_, n)| n).collect();
    let children = children_class_counts(cc, split);
    let child_totals: Vec<u64> = children.iter().map(|c| c.iter().sum()).collect();
    if child_totals.contains(&0) {
        return None;
    }
    let parent_impurity = impurity(scorer, &parent_counts);
    let weighted: f64 = children
        .iter()
        .zip(&child_totals)
        .map(|(counts, &t)| (t as f64 / total as f64) * impurity(scorer, counts))
        .sum();
    let gain = parent_impurity - weighted;
    let score = match scorer {
        Scorer::Entropy | Scorer::Gini => gain,
        Scorer::GainRatio => {
            let split_info = entropy(child_totals.iter().copied());
            if split_info <= f64::EPSILON {
                return None;
            }
            gain / split_info
        }
        Scorer::ChiSquare => chi_square(&children),
    };
    Some(ScoredSplit {
        split: split.clone(),
        score,
    })
}

/// Enumerate and score every candidate split of the given kind over
/// `attrs`, returning the best (deterministic tie-break: higher score, then
/// lower attribute index, then lower value). `None` when no attribute
/// admits a non-degenerate split.
pub fn best_split(
    cc: &CountsTable,
    attrs: &[u16],
    kind: SplitKind,
    scorer: Scorer,
) -> Option<ScoredSplit> {
    let mut best: Option<ScoredSplit> = None;
    let mut consider = |cand: ScoredSplit| {
        let better = match &best {
            None => true,
            Some(b) => cand.score > b.score + 1e-12,
        };
        if better {
            best = Some(cand);
        }
    };
    for &attr in attrs {
        let values: Vec<Code> = {
            let mut vs: Vec<Code> = cc.attr_vector(attr).map(|(v, _, _)| v).collect();
            vs.dedup();
            vs
        };
        if values.len() < 2 {
            continue; // single-valued attribute cannot split
        }
        match kind {
            SplitKind::Binary => {
                for &v in &values {
                    if let Some(s) = score_split(cc, &Split::Binary { attr, value: v }, scorer) {
                        consider(s);
                    }
                }
            }
            SplitKind::Multiway => {
                if let Some(s) = score_split(
                    cc,
                    &Split::Multiway {
                        attr,
                        values: values.clone(),
                    },
                    scorer,
                ) {
                    consider(s);
                }
            }
        }
    }
    best
}

/// Z-value for the sampled-split confidence intervals (DESIGN.md §13):
/// ±3σ ≈ 99.7% two-sided coverage, deliberately conservative so accepted
/// sampled splits virtually always match the exact-scan choice — the
/// escape hatch (escalation) absorbs the ambiguous cases instead.
pub const SAMPLE_Z: f64 = 3.0;

/// Normal-approximation half-width of a split score's confidence interval
/// when the score was computed from `sampled_rows` block-sampled rows:
/// `Z · R / (2√n)`, with `R` the score's range — 1 for Gini, `log2(k)`
/// for entropy gain over `k` classes. Returns `None` for measures with no
/// usable bound (gain ratio's normalisation and chi-square's unbounded
/// statistic), which callers must treat as "cannot accept — escalate".
pub fn score_half_width(scorer: Scorer, nclasses: u64, sampled_rows: u64) -> Option<f64> {
    if sampled_rows == 0 {
        return None;
    }
    let range = match scorer {
        Scorer::Gini => 1.0,
        Scorer::Entropy => (nclasses.max(2) as f64).log2(),
        Scorer::GainRatio | Scorer::ChiSquare => return None,
    };
    Some(SAMPLE_Z * range / (2.0 * (sampled_rows as f64).sqrt()))
}

/// Conservative bound on how far any candidate split's score over a node
/// holding `rows` rows (post-delta) can have moved after `magnitude`
/// signed row events were applied to it (DESIGN.md §15).
///
/// For the impurity-gain measures, swapping one row moves any class
/// frequency by at most `1/n`, and both the parent impurity and every
/// child's weighted impurity are `(R + log₂ n)/n`-Lipschitz in the counts
/// (`R` the impurity range: 1 for Gini, `log₂ k` for entropy), so `m`
/// events move a gain by at most `2·m/n·(R + log₂ n)`. The same bound
/// covers splits that only became candidates through the deltas (a value
/// with `≤ m` rows separates at most that much gain). Returns `None` —
/// callers must re-decide exactly — for gain ratio (normalisation
/// unbounded as split-info → 0), for chi-square (the statistic scales
/// with `n`, not a frequency), and whenever the churn reaches half the
/// node (`2m ≥ n`), where the frequency-perturbation argument collapses.
pub fn delta_score_bound(scorer: Scorer, nclasses: u64, rows: u64, magnitude: u64) -> Option<f64> {
    if magnitude == 0 {
        return Some(0.0);
    }
    if rows == 0 || magnitude.saturating_mul(2) >= rows {
        return None;
    }
    let range = match scorer {
        Scorer::Gini => 1.0,
        Scorer::Entropy => (nclasses.max(2) as f64).log2(),
        Scorer::GainRatio | Scorer::ChiSquare => return None,
    };
    let n = rows as f64;
    let m = magnitude as f64;
    Some(2.0 * m / n * (range + n.max(2.0).log2()))
}

/// Like [`best_split`], but also report the runner-up's score — the best
/// score among candidates that induce a *different partition* than the
/// winner. `None` as the second element means the winner was the only
/// non-degenerate candidate. The winner is selected with exactly
/// [`best_split`]'s tie-break, so the two functions always agree on it.
///
/// Mirror dedup: a binary split on a two-valued attribute produces the
/// same partition from either value (`A = v` vs `A = w` swaps children),
/// so only the lower value is enumerated — otherwise every two-valued
/// winner would "tie" its own mirror and the confidence separation of
/// [`score_half_width`] could never succeed. [`best_split`]'s tie-break
/// already prefers the lower value, so the winner is unaffected.
pub fn best_two_splits(
    cc: &CountsTable,
    attrs: &[u16],
    kind: SplitKind,
    scorer: Scorer,
) -> Option<(ScoredSplit, Option<f64>)> {
    let mut best: Option<ScoredSplit> = None;
    let mut runner: Option<f64> = None;
    let mut consider = |cand: ScoredSplit| {
        let better = match &best {
            None => true,
            Some(b) => cand.score > b.score + 1e-12,
        };
        if better {
            if let Some(b) = best.take() {
                runner = Some(runner.map_or(b.score, |r: f64| r.max(b.score)));
            }
            best = Some(cand);
        } else {
            runner = Some(runner.map_or(cand.score, |r: f64| r.max(cand.score)));
        }
    };
    for &attr in attrs {
        let values: Vec<Code> = {
            let mut vs: Vec<Code> = cc.attr_vector(attr).map(|(v, _, _)| v).collect();
            vs.dedup();
            vs
        };
        if values.len() < 2 {
            continue;
        }
        match kind {
            SplitKind::Binary => {
                // Two values → mirror partitions; enumerate one (see above).
                let distinct = if values.len() == 2 {
                    &values[..1]
                } else {
                    &values[..]
                };
                for &v in distinct {
                    if let Some(s) = score_split(cc, &Split::Binary { attr, value: v }, scorer) {
                        consider(s);
                    }
                }
            }
            SplitKind::Multiway => {
                if let Some(s) = score_split(
                    cc,
                    &Split::Multiway {
                        attr,
                        values: values.clone(),
                    },
                    scorer,
                ) {
                    consider(s);
                }
            }
        }
    }
    best.map(|b| (b, runner))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cc_from(rows: &[[Code; 3]]) -> CountsTable {
        let mut cc = CountsTable::new();
        for r in rows {
            cc.add_row(r, &[0, 1], 2);
        }
        cc
    }

    #[test]
    fn entropy_basics() {
        assert_eq!(entropy([0, 0]), 0.0);
        assert_eq!(entropy([10]), 0.0);
        assert!((entropy([5, 5]) - 1.0).abs() < 1e-12);
        assert!((entropy([1, 1, 1, 1]) - 2.0).abs() < 1e-12);
        // skewed is less than uniform
        assert!(entropy([9, 1]) < 1.0);
    }

    #[test]
    fn gini_basics() {
        assert_eq!(gini([10]), 0.0);
        assert!((gini([5, 5]) - 0.5).abs() < 1e-12);
        assert!(gini([9, 1]) < 0.5);
        assert_eq!(gini(std::iter::empty()), 0.0);
    }

    #[test]
    fn perfect_attribute_gets_full_gain() {
        // attr 0 determines class perfectly; attr 1 is noise.
        let cc = cc_from(&[[0, 0, 0], [0, 1, 0], [1, 0, 1], [1, 1, 1]]);
        let s = best_split(&cc, &[0, 1], SplitKind::Binary, Scorer::Entropy).unwrap();
        assert_eq!(s.split.attr(), 0);
        assert!((s.score - 1.0).abs() < 1e-9, "full bit of gain");
    }

    #[test]
    fn noise_attribute_scores_zero() {
        let cc = cc_from(&[[0, 0, 0], [1, 0, 1], [0, 1, 0], [1, 1, 1]]);
        let s = score_split(&cc, &Split::Binary { attr: 1, value: 0 }, Scorer::Entropy).unwrap();
        assert!(s.score.abs() < 1e-9);
    }

    #[test]
    fn degenerate_split_rejected() {
        let cc = cc_from(&[[0, 0, 0], [0, 1, 1]]);
        // attr 0 only has value 0 → binary split on it has an empty child.
        assert!(score_split(&cc, &Split::Binary { attr: 0, value: 0 }, Scorer::Entropy).is_none());
        // and best_split skips single-valued attributes entirely
        let s = best_split(&cc, &[0], SplitKind::Binary, Scorer::Entropy);
        assert!(s.is_none());
    }

    #[test]
    fn multiway_split_scores_each_value_child() {
        // attr 0 ∈ {0,1,2} determines class ∈ {0,1,0}.
        let cc = cc_from(&[[0, 0, 0], [1, 0, 1], [2, 0, 0], [0, 1, 0], [1, 1, 1]]);
        let s = best_split(&cc, &[0, 1], SplitKind::Multiway, Scorer::Entropy).unwrap();
        match &s.split {
            Split::Multiway { attr, values } => {
                assert_eq!(*attr, 0);
                assert_eq!(values, &vec![0, 1, 2]);
            }
            other => panic!("expected multiway, got {other:?}"),
        }
        // Perfect separation → gain = parent entropy.
        let parent_h = entropy([3u64, 2]);
        assert!((s.score - parent_h).abs() < 1e-9);
    }

    #[test]
    fn gain_ratio_penalizes_high_arity() {
        // attr 0: 4 distinct values each appearing once (id-like);
        // attr 1: binary, splits classes 2-2 imperfectly but cheaply.
        let cc = cc_from(&[[0, 0, 0], [1, 0, 0], [2, 1, 1], [3, 1, 1]]);
        let gain_best = best_split(&cc, &[0, 1], SplitKind::Multiway, Scorer::Entropy).unwrap();
        let ratio_best = best_split(&cc, &[0, 1], SplitKind::Multiway, Scorer::GainRatio).unwrap();
        // Plain gain is indifferent or favors the id attribute; the ratio
        // must favor attr 1 (split info 1 bit vs 2 bits).
        assert_eq!(ratio_best.split.attr(), 1);
        assert!(ratio_best.score >= gain_best.score / 2.0 - 1e-12);
    }

    #[test]
    fn gini_and_entropy_agree_on_perfect_splits() {
        let cc = cc_from(&[[0, 0, 0], [0, 1, 0], [1, 0, 1], [1, 1, 1]]);
        let e = best_split(&cc, &[0, 1], SplitKind::Binary, Scorer::Entropy).unwrap();
        let g = best_split(&cc, &[0, 1], SplitKind::Binary, Scorer::Gini).unwrap();
        assert_eq!(e.split, g.split);
    }

    #[test]
    fn deterministic_tie_break_prefers_first_attr() {
        // attrs 0 and 1 are identical copies.
        let cc = cc_from(&[[0, 0, 0], [1, 1, 1], [0, 0, 0], [1, 1, 1]]);
        let s = best_split(&cc, &[0, 1], SplitKind::Binary, Scorer::Entropy).unwrap();
        assert_eq!(s.split.attr(), 0);
        match s.split {
            Split::Binary { value, .. } => assert_eq!(value, 0, "lowest value wins ties"),
            _ => unreachable!(),
        }
    }

    #[test]
    fn chi_square_zero_under_independence() {
        // identical class mix in both children → no association
        let children = vec![vec![10u64, 20], vec![5, 10]];
        assert!(chi_square(&children).abs() < 1e-9);
        // empty table
        assert_eq!(chi_square(&[]), 0.0);
        assert_eq!(chi_square(&[vec![0, 0]]), 0.0);
    }

    #[test]
    fn chi_square_grows_with_association() {
        let perfect = vec![vec![30u64, 0], vec![0, 30]];
        let partial = vec![vec![20u64, 10], vec![10, 20]];
        assert!(chi_square(&perfect) > chi_square(&partial));
        assert!(
            (chi_square(&perfect) - 60.0).abs() < 1e-9,
            "n for perfect 2x2"
        );
    }

    #[test]
    fn chi_square_scorer_picks_the_informative_attribute() {
        let cc = cc_from(&[[0, 0, 0], [0, 1, 0], [1, 0, 1], [1, 1, 1]]);
        let s = best_split(&cc, &[0, 1], SplitKind::Binary, Scorer::ChiSquare).unwrap();
        assert_eq!(s.split.attr(), 0);
        assert!(s.score > 0.0);
    }

    #[test]
    fn empty_cc_yields_no_split() {
        let cc = CountsTable::new();
        assert!(best_split(&cc, &[0, 1], SplitKind::Binary, Scorer::Entropy).is_none());
    }

    #[test]
    fn half_width_shrinks_with_sample_size() {
        let hw_small = score_half_width(Scorer::Gini, 2, 100).unwrap();
        let hw_large = score_half_width(Scorer::Gini, 2, 10_000).unwrap();
        assert!(hw_large < hw_small);
        assert!((hw_small / hw_large - 10.0).abs() < 1e-9, "1/√n scaling");
        // Gini range is 1: hw = 3 / (2·√100) = 0.15.
        assert!((hw_small - 0.15).abs() < 1e-12);
        // Entropy range grows with the class count.
        let e2 = score_half_width(Scorer::Entropy, 2, 100).unwrap();
        let e8 = score_half_width(Scorer::Entropy, 8, 100).unwrap();
        assert!((e8 / e2 - 3.0).abs() < 1e-9, "log2(8)/log2(2)");
    }

    #[test]
    fn half_width_unavailable_for_unbounded_measures() {
        assert!(score_half_width(Scorer::GainRatio, 2, 100).is_none());
        assert!(score_half_width(Scorer::ChiSquare, 2, 100).is_none());
        assert!(score_half_width(Scorer::Gini, 2, 0).is_none());
    }

    #[test]
    fn best_two_agrees_with_best_split_and_reports_runner() {
        let cc = cc_from(&[[0, 0, 0], [0, 1, 0], [1, 0, 1], [1, 1, 1]]);
        let solo = best_split(&cc, &[0, 1], SplitKind::Binary, Scorer::Entropy).unwrap();
        let (best, runner) = best_two_splits(&cc, &[0, 1], SplitKind::Binary, Scorer::Entropy)
            .expect("non-degenerate candidates exist");
        assert_eq!(best, solo, "winner identical to best_split");
        let runner = runner.expect("attr 1 also admits splits");
        assert!(runner <= best.score);
        // attr 0 is perfect (gain 1), attr 1 is noise (gain 0): separated.
        assert!(best.score - runner > 0.9);
    }

    #[test]
    fn best_two_runner_none_with_single_candidate() {
        // One binary attribute, two values → candidates v=0 and v=1 both
        // exist (same partition, same score) so the runner ties the best;
        // restrict to a genuinely single-candidate table instead.
        let mut cc = CountsTable::new();
        for r in [[0u16, 0, 0], [1, 0, 1]] {
            cc.add_row(&r, &[0], 2);
        }
        let (best, runner) =
            best_two_splits(&cc, &[0], SplitKind::Multiway, Scorer::Entropy).unwrap();
        assert!(best.score > 0.0);
        assert!(runner.is_none(), "multiway on one attr = one candidate");
    }

    #[test]
    fn best_two_twin_attributes_tie() {
        // attrs 0 and 1 are identical copies: the runner-up must tie the
        // winner, so no confidence interval can separate them.
        let cc = cc_from(&[[0, 0, 0], [1, 1, 1], [0, 0, 0], [1, 1, 1]]);
        let (best, runner) =
            best_two_splits(&cc, &[0, 1], SplitKind::Binary, Scorer::Entropy).unwrap();
        let runner = runner.unwrap();
        assert!((best.score - runner).abs() < 1e-9);
    }
}
