//! Naïve Bayes client.
//!
//! The paper's §1: "other classification algorithms such as Naïve Bayes
//! can also plug in to this architecture" — NB needs exactly one CC table
//! (the root's) as its sufficient statistics: class priors and per-class
//! conditional value counts all read straight out of it.

use scaleclass::{CountsTable, Middleware, MwError, MwResult, NodeId};
use scaleclass_sqldb::Code;
use std::collections::HashMap;

/// A trained Naïve Bayes model over categorical attributes.
#[derive(Debug, Clone)]
pub struct NaiveBayes {
    /// `(class, rows)` priors.
    class_counts: Vec<(Code, u64)>,
    total: u64,
    /// `(attr, value, class) → count`.
    counts: HashMap<(u16, Code, Code), u64>,
    /// Distinct values per attribute (Laplace smoothing denominator).
    cards: HashMap<u16, u64>,
    attrs: Vec<u16>,
}

impl NaiveBayes {
    /// Train from a (root) counts table.
    pub fn from_cc(cc: &CountsTable, attrs: &[u16]) -> Self {
        let mut counts = HashMap::new();
        let mut cards = HashMap::new();
        for &attr in attrs {
            cards.insert(attr, cc.distinct_values(attr).max(1));
            for (value, class, n) in cc.attr_vector(attr) {
                counts.insert((attr, value, class), n);
            }
        }
        NaiveBayes {
            class_counts: cc.class_distribution().collect(),
            total: cc.total(),
            counts,
            cards,
            attrs: attrs.to_vec(),
        }
    }

    /// Train through the middleware: a single root request supplies all the
    /// sufficient statistics.
    pub fn train_with_middleware(mw: &mut Middleware) -> MwResult<Self> {
        let root = mw.root_request(NodeId(0));
        let attrs = root.attrs.clone();
        mw.enqueue(root)?;
        let mut results = mw.process_next_batch()?;
        let f = results
            .pop()
            .ok_or_else(|| MwError::Internal("root request not fulfilled".into()))?;
        Ok(Self::from_cc(&f.cc, &attrs))
    }

    /// Log-posterior (up to the shared evidence term) of `class` for `row`,
    /// with Laplace (+1) smoothing.
    pub fn log_posterior(&self, row: &[Code], class: Code, class_rows: u64) -> f64 {
        let mut lp =
            ((class_rows + 1) as f64 / (self.total + self.class_counts.len() as u64) as f64).ln();
        for &attr in &self.attrs {
            let card = self.cards[&attr];
            let joint = self
                .counts
                .get(&(attr, row[attr as usize], class))
                .copied()
                .unwrap_or(0);
            lp += ((joint + 1) as f64 / (class_rows + card) as f64).ln();
        }
        lp
    }

    /// Most probable class for a row.
    pub fn classify(&self, row: &[Code]) -> Code {
        self.class_counts
            .iter()
            .map(|&(c, n)| (c, self.log_posterior(row, c, n)))
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("log posteriors are finite"))
            .map(|(c, _)| c)
            .unwrap_or(0)
    }

    /// Classes the model knows.
    pub fn classes(&self) -> impl Iterator<Item = Code> + '_ {
        self.class_counts.iter().map(|&(c, _)| c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scaleclass::MiddlewareConfig;
    use scaleclass_sqldb::{Database, Schema};

    fn cc_from(rows: &[[Code; 3]]) -> CountsTable {
        let mut cc = CountsTable::new();
        for r in rows {
            cc.add_row(r, &[0, 1], 2);
        }
        cc
    }

    #[test]
    fn classifies_strongly_correlated_attribute() {
        // class ≡ a, b is noise.
        let cc = cc_from(&[
            [0, 0, 0],
            [0, 1, 0],
            [0, 0, 0],
            [1, 1, 1],
            [1, 0, 1],
            [1, 1, 1],
        ]);
        let nb = NaiveBayes::from_cc(&cc, &[0, 1]);
        assert_eq!(nb.classify(&[0, 0, 9]), 0);
        assert_eq!(nb.classify(&[1, 1, 9]), 1);
        assert_eq!(nb.classes().count(), 2);
    }

    #[test]
    fn smoothing_handles_unseen_values() {
        let cc = cc_from(&[[0, 0, 0], [1, 1, 1]]);
        let nb = NaiveBayes::from_cc(&cc, &[0, 1]);
        // value 7 never seen anywhere: posterior still finite, prior wins.
        let c = nb.classify(&[7, 7, 0]);
        assert!(c == 0 || c == 1);
        let lp0 = nb.log_posterior(&[7, 7, 0], 0, 1);
        assert!(lp0.is_finite());
    }

    #[test]
    fn priors_break_ties() {
        // class 0 is three times as common; attributes carry no signal.
        let cc = cc_from(&[[0, 0, 0], [0, 0, 0], [0, 0, 0], [0, 0, 1]]);
        let nb = NaiveBayes::from_cc(&cc, &[0, 1]);
        assert_eq!(nb.classify(&[0, 0, 0]), 0);
    }

    #[test]
    fn trains_through_middleware_with_one_scan() {
        let mut db = Database::new();
        db.create_table("d", Schema::from_pairs(&[("a", 3), ("class", 3)]))
            .unwrap();
        for i in 0..90u16 {
            db.insert("d", &[i % 3, i % 3]).unwrap();
        }
        let mut mw = Middleware::new(db, "d", "class", MiddlewareConfig::default()).unwrap();
        let nb = NaiveBayes::train_with_middleware(&mut mw).unwrap();
        for v in 0..3u16 {
            assert_eq!(nb.classify(&[v, 0]), v);
        }
        assert_eq!(mw.db_stats().seq_scans, 1, "NB needs exactly one scan");
    }

    #[test]
    fn empty_model_defaults() {
        let nb = NaiveBayes::from_cc(&CountsTable::new(), &[0]);
        assert_eq!(nb.classify(&[0, 0]), 0);
    }
}
