//! Decision-tree structure.
//!
//! An arena of nodes mirroring the paper's node states (§2.1): a node is
//! *partitioned* once its children exist, a *leaf* once a termination
//! criterion fired, and *active* while it still awaits its counts table.
//! Each node carries the data-location tag of Figure 1 (S/I/L) reported by
//! the middleware when its counts were built.

use crate::split::Split;
use scaleclass::DataLocation;
use scaleclass_sqldb::Code;
use std::fmt;

/// Node state (§2.1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeState {
    /// Awaiting sufficient statistics.
    Active,
    /// Terminal; predicts `class`.
    Leaf {
        /// Predicted class code.
        class: Code,
    },
    /// Split applied; children created.
    Partitioned {
        /// The chosen split.
        split: Split,
    },
}

/// The edge by which a node was reached from its parent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Edge {
    /// `attr = value` branch.
    Eq {
        /// Split attribute column.
        attr: u16,
        /// Split value.
        value: Code,
    },
    /// `attr <> value` ("other") branch.
    NotEq {
        /// Split attribute column.
        attr: u16,
        /// Split value.
        value: Code,
    },
}

impl fmt::Display for Edge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Edge::Eq { attr, value } => write!(f, "A{attr}={value}"),
            Edge::NotEq { attr, value } => write!(f, "A{attr}≠{value}"),
        }
    }
}

/// One tree node.
#[derive(Debug, Clone)]
pub struct TreeNode {
    /// Index in the arena (also the middleware `NodeId` payload).
    pub id: usize,
    /// Parent arena index (`None` at the root).
    pub parent: Option<usize>,
    /// Edge taken from the parent (`None` at the root).
    pub edge: Option<Edge>,
    /// Depth from the root (root = 0).
    pub depth: usize,
    /// Current node state.
    pub state: NodeState,
    /// `(class, rows)` at this node.
    pub class_counts: Vec<(Code, u64)>,
    /// Rows reaching this node.
    pub rows: u64,
    /// Children indices (empty unless partitioned).
    pub children: Vec<usize>,
    /// Where the middleware read this node's data (Figure 1 tag); `None`
    /// for leaves whose distribution came from the parent's CC table.
    pub source: Option<DataLocation>,
}

impl TreeNode {
    /// Majority class at this node (`0` for an empty node).
    pub fn majority_class(&self) -> Code {
        self.class_counts
            .iter()
            .max_by_key(|&&(_, n)| n)
            .map(|&(c, _)| c)
            .unwrap_or(0)
    }

    /// Is this node a leaf?
    pub fn is_leaf(&self) -> bool {
        matches!(self.state, NodeState::Leaf { .. })
    }
}

/// A grown decision tree.
#[derive(Debug, Clone, Default)]
pub struct DecisionTree {
    nodes: Vec<TreeNode>,
}

impl DecisionTree {
    /// An empty tree.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a node, returning its arena index.
    pub fn push(&mut self, mut node: TreeNode) -> usize {
        let id = self.nodes.len();
        node.id = id;
        if let Some(p) = node.parent {
            self.nodes[p].children.push(id);
        }
        self.nodes.push(node);
        id
    }

    /// Node by arena index.
    pub fn node(&self, id: usize) -> &TreeNode {
        &self.nodes[id]
    }

    /// Node by arena index, mutably.
    pub fn node_mut(&mut self, id: usize) -> &mut TreeNode {
        &mut self.nodes[id]
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Is the tree empty?
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// All nodes, in arena order.
    pub fn nodes(&self) -> &[TreeNode] {
        &self.nodes
    }

    /// The root node, if any.
    pub fn root(&self) -> Option<&TreeNode> {
        self.nodes.first()
    }

    /// Iterator over leaf nodes.
    pub fn leaves(&self) -> impl Iterator<Item = &TreeNode> {
        self.nodes.iter().filter(|n| n.is_leaf())
    }

    /// Maximum depth over all nodes (root = 0). `None` on an empty tree.
    pub fn depth(&self) -> Option<usize> {
        self.nodes.iter().map(|n| n.depth).max()
    }

    /// Classify one row by walking root → leaf. At a partitioned node with
    /// an unseen multiway value, fall back to the node's majority class.
    pub fn classify(&self, row: &[Code]) -> Code {
        let Some(mut node) = self.root() else {
            return 0;
        };
        loop {
            match &node.state {
                NodeState::Leaf { class } => return *class,
                NodeState::Active => return node.majority_class(),
                NodeState::Partitioned { split } => {
                    let next = match split {
                        Split::Binary { attr, value } => {
                            if row[*attr as usize] == *value {
                                node.children.first()
                            } else {
                                node.children.get(1)
                            }
                        }
                        Split::Multiway { attr, values } => values
                            .iter()
                            .position(|&v| v == row[*attr as usize])
                            .and_then(|i| node.children.get(i)),
                    };
                    match next {
                        Some(&c) => node = &self.nodes[c],
                        None => return node.majority_class(),
                    }
                }
            }
        }
    }

    /// Class-probability estimate for a row: walk to the deciding node and
    /// return its training class distribution, Laplace-smoothed over the
    /// classes observed at the root (`(class, probability)` pairs,
    /// ascending by class code). Empty for an empty tree.
    pub fn classify_proba(&self, row: &[Code]) -> Vec<(Code, f64)> {
        let Some(root) = self.root() else {
            return Vec::new();
        };
        let domain: Vec<Code> = root.class_counts.iter().map(|&(c, _)| c).collect();
        // Walk like `classify`, but stop at the node whose distribution
        // decides (leaf, active, or missing branch).
        let mut node = root;
        let deciding = loop {
            match &node.state {
                NodeState::Leaf { .. } | NodeState::Active => break node,
                NodeState::Partitioned { split } => {
                    let next = match split {
                        Split::Binary { attr, value } => {
                            if row[*attr as usize] == *value {
                                node.children.first()
                            } else {
                                node.children.get(1)
                            }
                        }
                        Split::Multiway { attr, values } => values
                            .iter()
                            .position(|&v| v == row[*attr as usize])
                            .and_then(|i| node.children.get(i)),
                    };
                    match next {
                        Some(&c) => node = &self.nodes[c],
                        None => break node,
                    }
                }
            }
        };
        let total: u64 = deciding.class_counts.iter().map(|&(_, n)| n).sum();
        let k = domain.len() as f64;
        domain
            .iter()
            .map(|&c| {
                let n = deciding
                    .class_counts
                    .iter()
                    .find(|&&(cc, _)| cc == c)
                    .map(|&(_, n)| n)
                    .unwrap_or(0);
                (c, (n as f64 + 1.0) / (total as f64 + k))
            })
            .collect()
    }

    /// Count of nodes whose counts came from each data-location class:
    /// `(server, file, memory)` — the S/I/L mix of Figure 1.
    pub fn source_mix(&self) -> (usize, usize, usize) {
        let mut mix = (0, 0, 0);
        for n in &self.nodes {
            match n.source {
                Some(DataLocation::Server) => mix.0 += 1,
                Some(DataLocation::File(_)) => mix.1 += 1,
                Some(DataLocation::Memory(_)) => mix.2 += 1,
                None => {}
            }
        }
        mix
    }

    /// Export the tree as Graphviz DOT (render with `dot -Tsvg`).
    /// Internal nodes show the split; leaves show the predicted class and
    /// row count; edges carry their branch labels.
    pub fn to_dot(&self, name: &str) -> String {
        let mut out = format!("digraph {name} {{\n");
        out.push_str("  node [fontname=\"monospace\"];\n");
        for n in &self.nodes {
            let label = match &n.state {
                NodeState::Leaf { class } => {
                    format!("class {class}\\n{} rows", n.rows)
                }
                NodeState::Partitioned { split } => match split {
                    Split::Binary { attr, value } => format!("A{attr} = {value}?"),
                    Split::Multiway { attr, .. } => format!("A{attr}"),
                },
                NodeState::Active => "active".to_string(),
            };
            let shape = if n.is_leaf() { "box" } else { "ellipse" };
            out.push_str(&format!(
                "  n{} [label=\"{label}\", shape={shape}];\n",
                n.id
            ));
            if let (Some(parent), Some(edge)) = (n.parent, n.edge) {
                let edge_label = match edge {
                    Edge::Eq { value, .. } => format!("= {value}"),
                    Edge::NotEq { value, .. } => format!("≠ {value}"),
                };
                out.push_str(&format!(
                    "  n{parent} -> n{} [label=\"{edge_label}\"];\n",
                    n.id
                ));
            }
        }
        out.push_str("}\n");
        out
    }

    /// Render an ASCII view of the first `max_nodes` nodes (pre-order).
    pub fn render(&self, max_nodes: usize) -> String {
        let mut out = String::new();
        let mut emitted = 0;
        let mut stack = vec![(0usize, 0usize)];
        if self.is_empty() {
            return "(empty tree)".into();
        }
        while let Some((id, indent)) = stack.pop() {
            if emitted >= max_nodes {
                out.push_str("…\n");
                break;
            }
            let n = &self.nodes[id];
            let tag = n
                .source
                .map(|s| format!("{}-", s.tag()))
                .unwrap_or_default();
            let edge = n.edge.map(|e| format!("[{e}] ")).unwrap_or_default();
            let desc = match &n.state {
                NodeState::Leaf { class } => format!("leaf class={class}"),
                NodeState::Active => "active".to_string(),
                NodeState::Partitioned { split } => match split {
                    Split::Binary { attr, value } => format!("split A{attr}={value}?"),
                    Split::Multiway { attr, .. } => format!("split on A{attr}"),
                },
            };
            out.push_str(&format!(
                "{}{edge}{tag}{} ({} rows)\n",
                "  ".repeat(indent),
                desc,
                n.rows
            ));
            emitted += 1;
            for &c in n.children.iter().rev() {
                stack.push((c, indent + 1));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// root splits binary on A0=1; left leaf class 1, right leaf class 0.
    fn small_tree() -> DecisionTree {
        let mut t = DecisionTree::new();
        t.push(TreeNode {
            id: 0,
            parent: None,
            edge: None,
            depth: 0,
            state: NodeState::Partitioned {
                split: Split::Binary { attr: 0, value: 1 },
            },
            class_counts: vec![(0, 6), (1, 4)],
            rows: 10,
            children: vec![],
            source: Some(DataLocation::Server),
        });
        t.push(TreeNode {
            id: 0,
            parent: Some(0),
            edge: Some(Edge::Eq { attr: 0, value: 1 }),
            depth: 1,
            state: NodeState::Leaf { class: 1 },
            class_counts: vec![(1, 4)],
            rows: 4,
            children: vec![],
            source: None,
        });
        t.push(TreeNode {
            id: 0,
            parent: Some(0),
            edge: Some(Edge::NotEq { attr: 0, value: 1 }),
            depth: 1,
            state: NodeState::Leaf { class: 0 },
            class_counts: vec![(0, 6)],
            rows: 6,
            children: vec![],
            source: Some(DataLocation::Memory(1)),
        });
        t
    }

    #[test]
    fn arena_wiring() {
        let t = small_tree();
        assert_eq!(t.len(), 3);
        assert_eq!(t.root().unwrap().children, vec![1, 2]);
        assert_eq!(t.node(1).parent, Some(0));
        assert_eq!(t.depth(), Some(1));
        assert_eq!(t.leaves().count(), 2);
    }

    #[test]
    fn classification_walks_binary_splits() {
        let t = small_tree();
        assert_eq!(t.classify(&[1, 9]), 1);
        assert_eq!(t.classify(&[0, 9]), 0);
        assert_eq!(t.classify(&[3, 9]), 0);
    }

    #[test]
    fn multiway_classification_with_unseen_value_falls_back() {
        let mut t = DecisionTree::new();
        t.push(TreeNode {
            id: 0,
            parent: None,
            edge: None,
            depth: 0,
            state: NodeState::Partitioned {
                split: Split::Multiway {
                    attr: 0,
                    values: vec![0, 1],
                },
            },
            class_counts: vec![(0, 1), (1, 5)],
            rows: 6,
            children: vec![],
            source: None,
        });
        for (v, class) in [(0u16, 0u16), (1, 1)] {
            t.push(TreeNode {
                id: 0,
                parent: Some(0),
                edge: Some(Edge::Eq { attr: 0, value: v }),
                depth: 1,
                state: NodeState::Leaf { class },
                class_counts: vec![(class, 3)],
                rows: 3,
                children: vec![],
                source: None,
            });
        }
        assert_eq!(t.classify(&[0]), 0);
        assert_eq!(t.classify(&[1]), 1);
        assert_eq!(t.classify(&[7]), 1, "unseen value → majority class");
    }

    #[test]
    fn empty_tree_classifies_to_zero() {
        assert_eq!(DecisionTree::new().classify(&[1, 2, 3]), 0);
        assert_eq!(DecisionTree::new().render(10), "(empty tree)");
    }

    #[test]
    fn source_mix_counts_tags() {
        let t = small_tree();
        assert_eq!(t.source_mix(), (1, 0, 1));
    }

    #[test]
    fn probability_estimates_sum_to_one_and_track_leaves() {
        let t = small_tree();
        let p = t.classify_proba(&[1, 0]);
        let total: f64 = p.iter().map(|&(_, x)| x).sum();
        assert!((total - 1.0).abs() < 1e-12);
        // leaf with pure class 1 (4 rows): P(1) = 5/6 under Laplace
        let p1 = p.iter().find(|&&(c, _)| c == 1).unwrap().1;
        assert!((p1 - 5.0 / 6.0).abs() < 1e-12);
        // argmax of proba agrees with classify
        let best = p
            .iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(best, t.classify(&[1, 0]));
        assert!(DecisionTree::new().classify_proba(&[0]).is_empty());
    }

    #[test]
    fn dot_export_is_well_formed() {
        let dot = small_tree().to_dot("t");
        assert!(dot.starts_with("digraph t {"));
        assert!(dot.trim_end().ends_with('}'));
        assert_eq!(dot.matches("->").count(), 2, "two edges for two children");
        assert!(dot.contains("A0 = 1?"));
        assert!(dot.contains("class 1"));
        assert!(dot.contains("shape=box"), "leaves are boxes");
        assert!(dot.contains("[label=\"= 1\"]"));
        assert!(dot.contains("≠ 1"));
        // empty tree still yields a valid digraph
        let empty = DecisionTree::new().to_dot("e");
        assert!(empty.contains("digraph e {"));
    }

    #[test]
    fn render_shows_structure() {
        let s = small_tree().render(10);
        assert!(s.contains("split A0=1?"));
        assert!(s.contains("leaf class=1"));
        assert!(s.contains("S-"), "source tag rendered");
        assert!(s.contains("[A0=1]"), "edge label rendered");
        let truncated = small_tree().render(1);
        assert!(truncated.contains('…'));
    }
}
