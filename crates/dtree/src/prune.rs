//! Pessimistic error pruning.
//!
//! The paper grows full trees ("we did not implement any tree pruning
//! criteria … This can be easily implemented in our scheme") — this module
//! is that easily-implemented extension: C4.5-style pessimistic pruning
//! using only the class counts already stored in the tree, i.e. no extra
//! data access, preserving the middleware's Observation 1.

use crate::tree::{DecisionTree, NodeState, TreeNode};

/// Pessimistic error estimate of predicting the majority class on a node:
/// observed errors plus a 0.5 continuity correction (per leaf).
fn leaf_error(node: &TreeNode) -> f64 {
    let total: u64 = node.class_counts.iter().map(|&(_, n)| n).sum();
    let majority: u64 = node.class_counts.iter().map(|&(_, n)| n).max().unwrap_or(0);
    (total - majority) as f64 + 0.5
}

/// Prune a grown tree bottom-up: collapse any internal node whose
/// pessimistic leaf error does not exceed its subtree's pessimistic error.
/// Returns a fresh, compact tree (no orphan nodes).
pub fn prune_pessimistic(tree: &DecisionTree) -> DecisionTree {
    if tree.is_empty() {
        return DecisionTree::new();
    }
    // Decide, bottom-up, which nodes collapse.
    let mut collapse = vec![false; tree.len()];
    // Process in reverse push order (children always after parents in our
    // builders), so descendants are decided before ancestors.
    for idx in (0..tree.len()).rev() {
        let node = tree.node(idx);
        if node.children.is_empty() {
            continue;
        }
        let sub = pruned_subtree_error(tree, idx, &collapse);
        if leaf_error(node) <= sub + 1e-9 {
            collapse[idx] = true;
        }
    }
    // Rebuild, skipping collapsed subtrees.
    let mut out = DecisionTree::new();
    rebuild(tree, 0, None, &collapse, &mut out);
    out
}

/// Subtree error respecting already-collapsed descendants.
fn pruned_subtree_error(tree: &DecisionTree, idx: usize, collapse: &[bool]) -> f64 {
    let node = tree.node(idx);
    if node.children.is_empty() || collapse[idx] {
        leaf_error(node)
    } else {
        node.children
            .iter()
            .map(|&c| pruned_subtree_error(tree, c, collapse))
            .sum()
    }
}

fn rebuild(
    src: &DecisionTree,
    idx: usize,
    new_parent: Option<usize>,
    collapse: &[bool],
    out: &mut DecisionTree,
) {
    let node = src.node(idx);
    let collapsed = collapse[idx];
    let state = if collapsed || node.children.is_empty() {
        NodeState::Leaf {
            class: node.majority_class(),
        }
    } else {
        node.state.clone()
    };
    let new_idx = out.push(TreeNode {
        id: 0,
        parent: new_parent,
        edge: node.edge,
        depth: node.depth,
        state,
        class_counts: node.class_counts.clone(),
        rows: node.rows,
        children: Vec::new(),
        source: node.source,
    });
    if !collapsed {
        for &c in &node.children {
            rebuild(src, c, Some(new_idx), collapse, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grow::GrowConfig;
    use crate::inmemory::grow_in_memory;
    use scaleclass_sqldb::Code;

    #[test]
    fn noise_only_tree_prunes_to_root() {
        // attribute is pure noise: any split is overfitting.
        let mut rows: Vec<Code> = Vec::new();
        for i in 0..64u16 {
            rows.extend_from_slice(&[i % 4, u16::from(i % 7 == 0)]);
        }
        let full = grow_in_memory(&rows, 2, 1, &[0], &GrowConfig::default());
        let pruned = prune_pessimistic(&full);
        assert!(pruned.len() < full.len() || full.len() == 1);
        // Collapsing never changes the majority prediction of the root.
        assert_eq!(
            pruned.root().unwrap().majority_class(),
            full.root().unwrap().majority_class()
        );
    }

    #[test]
    fn perfect_tree_survives_pruning() {
        let mut rows: Vec<Code> = Vec::new();
        for i in 0..40u16 {
            let a = i % 2;
            rows.extend_from_slice(&[a, a]);
        }
        let full = grow_in_memory(&rows, 2, 1, &[0], &GrowConfig::default());
        let pruned = prune_pessimistic(&full);
        assert_eq!(pruned.len(), full.len(), "no error → nothing to prune");
        for a in 0..2u16 {
            assert_eq!(pruned.classify(&[a, 0]), a);
        }
    }

    #[test]
    fn pruned_tree_has_no_orphans() {
        let mut rows: Vec<Code> = Vec::new();
        for i in 0..100u16 {
            rows.extend_from_slice(&[i % 4, (i / 4) % 3, u16::from(i % 4 >= 2 || i % 13 == 0)]);
        }
        let full = grow_in_memory(&rows, 3, 2, &[0, 1], &GrowConfig::default());
        let pruned = prune_pessimistic(&full);
        // Every non-root node's parent exists and lists it as a child.
        for n in pruned.nodes() {
            if let Some(p) = n.parent {
                assert!(pruned.node(p).children.contains(&n.id));
            }
        }
        // Every internal node is Partitioned; every childless node a Leaf.
        for n in pruned.nodes() {
            if n.children.is_empty() {
                assert!(n.is_leaf());
            } else {
                assert!(matches!(n.state, NodeState::Partitioned { .. }));
            }
        }
    }

    #[test]
    fn empty_tree_prunes_to_empty() {
        assert!(prune_pessimistic(&DecisionTree::new()).is_empty());
    }
}
