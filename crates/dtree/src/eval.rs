//! Model evaluation: accuracy, confusion matrices, structural tree
//! comparison.

use crate::tree::{DecisionTree, NodeState};
use scaleclass_sqldb::Code;

/// A square confusion matrix over class codes `0..n`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfusionMatrix {
    n: usize,
    /// `cells[actual][predicted]`.
    cells: Vec<Vec<u64>>,
}

impl ConfusionMatrix {
    /// A zeroed `nclasses × nclasses` matrix.
    pub fn new(nclasses: usize) -> Self {
        ConfusionMatrix {
            n: nclasses,
            cells: vec![vec![0; nclasses]; nclasses],
        }
    }

    /// Record one (actual, predicted) observation; out-of-range class
    /// codes are ignored.
    pub fn record(&mut self, actual: Code, predicted: Code) {
        let (a, p) = (actual as usize, predicted as usize);
        if a < self.n && p < self.n {
            self.cells[a][p] += 1;
        }
    }

    /// The cell for (actual, predicted).
    pub fn count(&self, actual: Code, predicted: Code) -> u64 {
        self.cells[actual as usize][predicted as usize]
    }

    /// Total recorded observations.
    pub fn total(&self) -> u64 {
        self.cells.iter().flatten().sum()
    }

    /// Diagonal sum (correct predictions).
    pub fn correct(&self) -> u64 {
        (0..self.n).map(|i| self.cells[i][i]).sum()
    }

    /// Fraction correct (0 when empty).
    pub fn accuracy(&self) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            self.correct() as f64 / t as f64
        }
    }

    /// Render a compact table (rows = actual, columns = predicted).
    pub fn render(&self) -> String {
        let mut out = String::from("actual\\pred");
        for p in 0..self.n {
            out.push_str(&format!("\t{p}"));
        }
        out.push('\n');
        for (a, row) in self.cells.iter().enumerate() {
            out.push_str(&a.to_string());
            for &c in row {
                out.push_str(&format!("\t{c}"));
            }
            out.push('\n');
        }
        out
    }
}

/// Evaluate a classifier function over flat rows; returns the confusion
/// matrix.
pub fn evaluate(
    classify: impl Fn(&[Code]) -> Code,
    rows: &[Code],
    arity: usize,
    class_col: u16,
    nclasses: usize,
) -> ConfusionMatrix {
    assert!(arity > 0 && rows.len() % arity == 0);
    let mut cm = ConfusionMatrix::new(nclasses);
    for row in rows.chunks_exact(arity) {
        cm.record(row[class_col as usize], classify(row));
    }
    cm
}

/// Accuracy of a decision tree on flat rows.
pub fn tree_accuracy(tree: &DecisionTree, rows: &[Code], arity: usize, class_col: u16) -> f64 {
    if rows.is_empty() {
        return 0.0;
    }
    let correct = rows
        .chunks_exact(arity)
        .filter(|row| tree.classify(row) == row[class_col as usize])
        .count();
    correct as f64 / (rows.len() / arity) as f64
}

/// Mean-decrease-in-impurity feature importance from a grown tree: for
/// every internal node, the split's weighted impurity decrease (entropy,
/// computed from the stored class counts) is credited to its attribute;
/// scores are normalized to sum to 1. Returns `(attr, importance)` pairs,
/// descending. Attributes never split on are absent.
pub fn feature_importance(tree: &DecisionTree) -> Vec<(u16, f64)> {
    use crate::split::entropy;
    let mut scores: std::collections::BTreeMap<u16, f64> = std::collections::BTreeMap::new();
    let total = tree.root().map_or(0, |r| r.rows) as f64;
    if total == 0.0 {
        return Vec::new();
    }
    for n in tree.nodes() {
        let NodeState::Partitioned { split } = &n.state else {
            continue;
        };
        let parent_h = entropy(n.class_counts.iter().map(|&(_, k)| k));
        let mut weighted = 0.0;
        for &c in &n.children {
            let child = tree.node(c);
            let h = entropy(child.class_counts.iter().map(|&(_, k)| k));
            weighted += (child.rows as f64 / n.rows.max(1) as f64) * h;
        }
        let gain = (parent_h - weighted).max(0.0);
        *scores.entry(split.attr()).or_insert(0.0) += (n.rows as f64 / total) * gain;
    }
    let sum: f64 = scores.values().sum();
    let mut out: Vec<(u16, f64)> = scores
        .into_iter()
        .map(|(a, s)| (a, if sum > 0.0 { s / sum } else { 0.0 }))
        .collect();
    out.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite").then(a.0.cmp(&b.0)));
    out
}

/// K-fold cross-validation of an arbitrary train/classify procedure over
/// flat rows. Folds are assigned round-robin (deterministic). Returns the
/// per-fold test accuracies.
///
/// `train` receives the training rows (flat) and returns a classifier.
pub fn cross_validate<C>(
    rows: &[Code],
    arity: usize,
    class_col: u16,
    folds: usize,
    mut train: impl FnMut(&[Code]) -> C,
) -> Vec<f64>
where
    C: Fn(&[Code]) -> Code,
{
    assert!(arity > 0 && rows.len() % arity == 0);
    assert!(folds >= 2, "need at least two folds");
    let nrows = rows.len() / arity;
    let mut accuracies = Vec::with_capacity(folds);
    for fold in 0..folds {
        let mut train_rows = Vec::new();
        let mut test_rows = Vec::new();
        for (i, row) in rows.chunks_exact(arity).enumerate() {
            if i % folds == fold {
                test_rows.extend_from_slice(row);
            } else {
                train_rows.extend_from_slice(row);
            }
        }
        if test_rows.is_empty() {
            continue;
        }
        let classifier = train(&train_rows);
        let correct = test_rows
            .chunks_exact(arity)
            .filter(|r| classifier(r) == r[class_col as usize])
            .count();
        accuracies.push(correct as f64 / (test_rows.len() / arity) as f64);
    }
    let _ = nrows;
    accuracies
}

/// Structural equality of two trees: same splits, same class counts, same
/// leaf labels, children compared pairwise — ignoring arena numbering and
/// data-source tags. Used to prove the middleware-driven client grows the
/// exact tree the in-memory client does.
pub fn trees_structurally_equal(a: &DecisionTree, b: &DecisionTree) -> bool {
    fn eq(a: &DecisionTree, ai: usize, b: &DecisionTree, bi: usize) -> bool {
        let (na, nb) = (a.node(ai), b.node(bi));
        if na.rows != nb.rows
            || na.class_counts != nb.class_counts
            || na.edge != nb.edge
            || na.children.len() != nb.children.len()
        {
            return false;
        }
        let states_match = match (&na.state, &nb.state) {
            (NodeState::Leaf { class: ca }, NodeState::Leaf { class: cb }) => ca == cb,
            (NodeState::Partitioned { split: sa }, NodeState::Partitioned { split: sb }) => {
                sa == sb
            }
            (NodeState::Active, NodeState::Active) => true,
            _ => false,
        };
        states_match
            && na
                .children
                .iter()
                .zip(&nb.children)
                .all(|(&ca, &cb)| eq(a, ca, b, cb))
    }
    match (a.is_empty(), b.is_empty()) {
        (true, true) => true,
        (false, false) => eq(a, 0, b, 0),
        _ => false,
    }
}

/// Split-level structural equality: same shape, same edge predicates,
/// same splits at internal nodes, and fully identical leaves (class,
/// rows, class counts) — but blind to the `rows`/`class_counts`
/// metadata of *internal* nodes. This is the right notion of "identical
/// tree" for sampled counting (DESIGN.md §13): internal nodes reached
/// through an accepted sampled split carry scaled row estimates, while
/// every decision the tree encodes — splits, shape, leaf distributions —
/// is still produced from exact counts.
pub fn trees_same_splits(a: &DecisionTree, b: &DecisionTree) -> bool {
    fn eq(a: &DecisionTree, ai: usize, b: &DecisionTree, bi: usize) -> bool {
        let (na, nb) = (a.node(ai), b.node(bi));
        if na.edge != nb.edge || na.children.len() != nb.children.len() {
            return false;
        }
        let states_match = match (&na.state, &nb.state) {
            (NodeState::Leaf { class: ca }, NodeState::Leaf { class: cb }) => {
                ca == cb && na.rows == nb.rows && na.class_counts == nb.class_counts
            }
            (NodeState::Partitioned { split: sa }, NodeState::Partitioned { split: sb }) => {
                sa == sb
            }
            (NodeState::Active, NodeState::Active) => true,
            _ => false,
        };
        states_match
            && na
                .children
                .iter()
                .zip(&nb.children)
                .all(|(&ca, &cb)| eq(a, ca, b, cb))
    }
    match (a.is_empty(), b.is_empty()) {
        (true, true) => true,
        (false, false) => eq(a, 0, b, 0),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grow::GrowConfig;
    use crate::inmemory::grow_in_memory;

    #[test]
    fn confusion_matrix_accounting() {
        let mut cm = ConfusionMatrix::new(2);
        cm.record(0, 0);
        cm.record(0, 1);
        cm.record(1, 1);
        cm.record(1, 1);
        assert_eq!(cm.total(), 4);
        assert_eq!(cm.correct(), 3);
        assert!((cm.accuracy() - 0.75).abs() < 1e-12);
        assert_eq!(cm.count(0, 1), 1);
        let rendered = cm.render();
        assert!(rendered.contains("actual"));
    }

    #[test]
    fn out_of_range_classes_ignored() {
        let mut cm = ConfusionMatrix::new(2);
        cm.record(5, 0);
        assert_eq!(cm.total(), 0);
        assert_eq!(cm.accuracy(), 0.0);
    }

    #[test]
    fn evaluate_against_constant_classifier() {
        let rows: Vec<Code> = vec![0, 0, 1, 0, 0, 1]; // (a, class) pairs x3
        let cm = evaluate(|_| 0, &rows, 2, 1, 2);
        assert_eq!(cm.total(), 3);
        assert_eq!(cm.correct(), 2, "classes are 0, 0, 1; constant-0 gets two");
    }

    #[test]
    fn tree_accuracy_on_learnable_data() {
        let mut rows: Vec<Code> = Vec::new();
        for i in 0..40u16 {
            rows.extend_from_slice(&[i % 2, i % 2]);
        }
        let tree = grow_in_memory(&rows, 2, 1, &[0], &GrowConfig::default());
        assert_eq!(tree_accuracy(&tree, &rows, 2, 1), 1.0);
        assert_eq!(tree_accuracy(&tree, &[], 2, 1), 0.0);
    }

    #[test]
    fn feature_importance_ranks_the_signal_attribute_first() {
        // class == a; b is noise.
        let mut rows: Vec<Code> = Vec::new();
        for i in 0..120u16 {
            rows.extend_from_slice(&[i % 2, (i / 7) % 3, i % 2]);
        }
        let tree = grow_in_memory(&rows, 3, 2, &[0, 1], &GrowConfig::default());
        let imp = feature_importance(&tree);
        assert_eq!(imp[0].0, 0, "attribute 0 carries all the signal");
        assert!(imp[0].1 > 0.99, "{imp:?}");
        let total: f64 = imp.iter().map(|&(_, s)| s).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn feature_importance_of_leafless_tree_is_empty() {
        let rows: Vec<Code> = (0..20).flat_map(|i| [i % 4, 1]).collect();
        let tree = grow_in_memory(&rows, 2, 1, &[0], &GrowConfig::default());
        assert!(feature_importance(&tree).is_empty(), "pure data, no splits");
        assert!(feature_importance(&DecisionTree::new()).is_empty());
    }

    #[test]
    fn cross_validation_on_learnable_data() {
        // class == a exactly: every fold should be perfect.
        let mut rows: Vec<Code> = Vec::new();
        for i in 0..60u16 {
            rows.extend_from_slice(&[i % 3, i % 3]);
        }
        let accs = cross_validate(&rows, 2, 1, 5, |train| {
            let tree = grow_in_memory(train, 2, 1, &[0], &GrowConfig::default());
            move |row: &[Code]| tree.classify(row)
        });
        assert_eq!(accs.len(), 5);
        assert!(accs.iter().all(|&a| (a - 1.0).abs() < 1e-12), "{accs:?}");
    }

    #[test]
    fn cross_validation_fold_sizes() {
        // 10 rows, 3 folds → folds of 4/3/3 test rows; accuracy defined.
        let rows: Vec<Code> = (0..10u16).flat_map(|i| [i % 2, 0]).collect();
        let accs = cross_validate(&rows, 2, 1, 3, |_| |_: &[Code]| 0);
        assert_eq!(accs.len(), 3);
        assert!(accs.iter().all(|&a| (a - 1.0).abs() < 1e-12));
    }

    #[test]
    #[should_panic(expected = "two folds")]
    fn cross_validation_rejects_single_fold() {
        cross_validate(&[0, 0], 2, 1, 1, |_| |_: &[Code]| 0);
    }

    #[test]
    fn structural_equality_detects_differences() {
        let mut rows: Vec<Code> = Vec::new();
        for i in 0..40u16 {
            rows.extend_from_slice(&[i % 2, (i / 2) % 2, (i % 2) & ((i / 2) % 2)]);
        }
        let a = grow_in_memory(&rows, 3, 2, &[0, 1], &GrowConfig::default());
        let b = grow_in_memory(&rows, 3, 2, &[0, 1], &GrowConfig::default());
        assert!(trees_structurally_equal(&a, &b));

        let shallow = grow_in_memory(
            &rows,
            3,
            2,
            &[0, 1],
            &GrowConfig {
                max_depth: Some(1),
                ..GrowConfig::default()
            },
        );
        assert!(!trees_structurally_equal(&a, &shallow));
        assert!(trees_structurally_equal(
            &DecisionTree::new(),
            &DecisionTree::new()
        ));
        assert!(!trees_structurally_equal(&a, &DecisionTree::new()));
    }
}
