//! Property tests for the classification clients: measure bounds, split
//! conservation, growth sanity, pruning, rules, and discretization.

use proptest::prelude::*;
use scaleclass::CountsTable;
use scaleclass_dtree::{
    best_split, entropy, extract_rules, gini, grow_in_memory, load_tree, mdl_cut_points,
    prune_pessimistic, rules::RuleList, save_tree, tree_accuracy, Discretizer, GrowConfig, Scorer,
    SplitKind,
};
use scaleclass_sqldb::Code;

fn rows_strategy() -> impl Strategy<Value = Vec<Code>> {
    prop::collection::vec((0u16..4, 0u16..3, 0u16..2), 1..150)
        .prop_map(|rows| rows.into_iter().flat_map(|(a, b, c)| [a, b, c]).collect())
}

const ARITY: usize = 3;
const CLASS: u16 = 2;
const ATTRS: [u16; 2] = [0, 1];

fn cc_of(flat: &[Code]) -> CountsTable {
    let mut cc = CountsTable::new();
    for row in flat.chunks_exact(ARITY) {
        cc.add_row(row, &ATTRS, CLASS);
    }
    cc
}

proptest! {
    /// Entropy and Gini stay within their theoretical bounds and are
    /// permutation invariant.
    #[test]
    fn impurity_bounds(counts in prop::collection::vec(0u64..1000, 1..8)) {
        let k = counts.iter().filter(|&&c| c > 0).count().max(1) as f64;
        let h = entropy(counts.iter().copied());
        let g = gini(counts.iter().copied());
        prop_assert!(h >= -1e-12 && h <= k.log2() + 1e-9, "entropy {h} vs k {k}");
        prop_assert!(g >= -1e-12 && g <= 1.0 - 1.0 / k + 1e-9, "gini {g}");
        let mut shuffled = counts.clone();
        shuffled.reverse();
        prop_assert!((entropy(shuffled.iter().copied()) - h).abs() < 1e-12);
    }

    /// Any best split has non-negative gain bounded by the parent
    /// impurity, for every scorer and split kind.
    #[test]
    fn best_split_gain_is_bounded(flat in rows_strategy()) {
        let cc = cc_of(&flat);
        let parent_h = entropy(cc.class_distribution().map(|(_, n)| n));
        for scorer in [Scorer::Entropy, Scorer::Gini, Scorer::GainRatio] {
            for kind in [SplitKind::Binary, SplitKind::Multiway] {
                if let Some(s) = best_split(&cc, &ATTRS, kind, scorer) {
                    prop_assert!(s.score >= -1e-12, "{scorer:?}/{kind:?}: {}", s.score);
                    if scorer == Scorer::Entropy {
                        prop_assert!(s.score <= parent_h + 1e-9);
                    }
                }
            }
        }
    }

    /// Grown trees classify at least as well as the majority baseline on
    /// their own training data, and never worse than chance.
    #[test]
    fn training_accuracy_beats_majority(flat in rows_strategy()) {
        let tree = grow_in_memory(&flat, ARITY, CLASS, &ATTRS, &GrowConfig::default());
        let acc = tree_accuracy(&tree, &flat, ARITY, CLASS);
        let n = (flat.len() / ARITY) as f64;
        let majority = {
            let ones = flat.chunks_exact(ARITY).filter(|r| r[2] == 1).count() as f64;
            ones.max(n - ones) / n
        };
        prop_assert!(acc + 1e-12 >= majority, "acc {acc} < majority {majority}");
    }

    /// Pruning never enlarges the tree, never leaves orphans, and never
    /// changes the root's majority prediction.
    #[test]
    fn pruning_invariants(flat in rows_strategy()) {
        let tree = grow_in_memory(&flat, ARITY, CLASS, &ATTRS, &GrowConfig::default());
        let pruned = prune_pessimistic(&tree);
        prop_assert!(pruned.len() <= tree.len());
        prop_assert!(!pruned.is_empty());
        for n in pruned.nodes() {
            if let Some(p) = n.parent {
                prop_assert!(pruned.node(p).children.contains(&n.id));
            }
            for &c in &n.children {
                prop_assert_eq!(pruned.node(c).parent, Some(n.id));
            }
        }
        prop_assert_eq!(
            pruned.root().unwrap().majority_class(),
            tree.root().unwrap().majority_class()
        );
    }

    /// The extracted rule list classifies exactly like the tree, over the
    /// whole input domain (not just training rows).
    #[test]
    fn rules_equal_tree_classification(flat in rows_strategy()) {
        let tree = grow_in_memory(&flat, ARITY, CLASS, &ATTRS, &GrowConfig::default());
        let rules: RuleList = extract_rules(&tree);
        for a in 0..4u16 {
            for b in 0..3u16 {
                let row = [a, b, 0];
                prop_assert_eq!(rules.classify(&row), tree.classify(&row));
            }
        }
        // rule supports partition the training data
        let total: u64 = rules.rules.iter().map(|r| r.support).sum();
        prop_assert_eq!(total, (flat.len() / ARITY) as u64);
    }

    /// Serialized models round-trip exactly for arbitrary grown trees.
    #[test]
    fn model_io_round_trips(flat in rows_strategy()) {
        use scaleclass_dtree::trees_structurally_equal;
        let tree = grow_in_memory(&flat, ARITY, CLASS, &ATTRS, &GrowConfig::default());
        let mut buf = Vec::new();
        save_tree(&tree, &mut buf).unwrap();
        let loaded = load_tree(&buf[..]).unwrap();
        prop_assert!(trees_structurally_equal(&tree, &loaded));
        for a in 0..4u16 {
            for b in 0..3u16 {
                prop_assert_eq!(tree.classify(&[a, b, 0]), loaded.classify(&[a, b, 0]));
            }
        }
    }

    /// MDL cut points always lie strictly inside the observed value range
    /// and are strictly increasing.
    #[test]
    fn mdl_cuts_well_formed(
        pairs in prop::collection::vec((-100.0f64..100.0, 0u16..3), 2..120)
    ) {
        let values: Vec<f64> = pairs.iter().map(|&(v, _)| v).collect();
        let classes: Vec<Code> = pairs.iter().map(|&(_, c)| c).collect();
        let cuts = mdl_cut_points(&values, &classes);
        let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        for w in cuts.windows(2) {
            prop_assert!(w[0] < w[1], "cuts not increasing: {cuts:?}");
        }
        for &c in &cuts {
            prop_assert!(c > lo && c < hi, "cut {c} outside ({lo}, {hi})");
        }
    }

    /// The fitted discretizer produces codes within its declared
    /// cardinalities for any row in (or out of) the training range.
    #[test]
    fn discretizer_codes_in_range(
        rows in prop::collection::vec((-50.0f64..50.0, -50.0f64..50.0, 0u16..2), 4..80),
        probe in (-200.0f64..200.0, -200.0f64..200.0),
    ) {
        let flat: Vec<f64> = rows.iter().flat_map(|&(x, y, _)| [x, y]).collect();
        let classes: Vec<Code> = rows.iter().map(|&(_, _, c)| c).collect();
        let disc = Discretizer::fit_mdl(&flat, 2, &classes, 5);
        let cards = disc.cardinalities();
        let coded = disc.transform_row(&[probe.0, probe.1]);
        for (code, card) in coded.iter().zip(&cards) {
            prop_assert!(code < card, "code {code} exceeds cardinality {card}");
        }
    }
}
