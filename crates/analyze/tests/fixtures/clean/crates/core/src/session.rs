//! Fixture: lock discipline done right — canonical order, guards
//! dropped before blocking, one vetted relaxed load.

use std::sync::atomic::Ordering;

impl BudgetArbiter {
    /// Rebalance under the canonical order.
    pub fn rebalance(&self, tx: &Sender<usize>) {
        let inner = self.inner.lock();
        let db = self.db.read();
        let rows = db.len();
        drop(db);
        drop(inner);
        tx.send(rows);
        // analyze:allow(atomic-ordering): fixture — monotone counter read;
        // tearing cannot violate the lease invariant.
        let seen = self.lease.load(Ordering::Relaxed);
        let _ = seen;
    }
}
