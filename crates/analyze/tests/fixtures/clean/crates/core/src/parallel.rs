//! Fixture: scan loop with iterator access and one vetted index.

/// Sum candidate slots without panicking.
pub fn scan(rows: &[Vec<u64>], idxs: &[usize]) -> u64 {
    let mut total = 0u64;
    for row in rows {
        for &i in idxs {
            total = total.saturating_add(row.get(i).copied().unwrap_or(0));
        }
        // analyze:allow(hot-path-panic): fixture — index 0 exists by contract.
        total = total.saturating_add(row[0]);
    }
    total
}
