//! Fixture: accounting arithmetic done right, plus one vetted cast.

/// Budget admission with checked arithmetic.
pub fn admit(reserved: u64, bound: u64, budget: u64, rows: usize) -> bool {
    let next = reserved.saturating_add(bound);
    let rows64 = u64::try_from(rows).unwrap_or(u64::MAX);
    // analyze:allow(accounting-arith): fixture — the cast is vetted here.
    let scaled = bound as u32;
    next <= budget && rows64 >= u64::from(scaled)
}
