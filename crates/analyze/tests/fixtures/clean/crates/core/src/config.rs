//! Fixture: the env-knob surface — the knob is parsed here and named
//! in the fixture README.

/// Parse the demo knob.
pub fn env_demo() -> Option<usize> {
    std::env::var("SCALECLASS_DEMO").ok().and_then(|v| v.parse().ok())
}
