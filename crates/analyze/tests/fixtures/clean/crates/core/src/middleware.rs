//! Fixture: middleware lookalike that stays inside the accounted layers.

/// Pretend to schedule without touching raw I/O.
pub fn plan(pending: usize) -> usize {
    pending.saturating_sub(1)
}
