//! Fixture: stats fields all written and asserted.

/// Middleware counters.
#[derive(Default)]
pub struct MiddlewareStats {
    /// Batch rounds completed.
    pub rounds: u64,
}

impl MiddlewareStats {
    /// Count one round.
    pub fn bump(&mut self) {
        self.rounds = self.rounds.saturating_add(1);
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn rounds_is_counted() {
        let mut s = super::MiddlewareStats::default();
        s.bump();
        assert_eq!(s.rounds, 1);
    }
}
