//! Fixture: an env knob no config knob or README mention backs.

/// Read the phantom knob.
pub fn phantom() -> Option<String> {
    std::env::var("SCALECLASS_PHANTOM").ok()
}
