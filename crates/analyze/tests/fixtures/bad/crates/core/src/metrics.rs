//! Fixture: stats-coverage violations.

/// Middleware counters, some of them unloved.
#[derive(Default)]
pub struct MiddlewareStats {
    /// Written and asserted — covered.
    pub rounds: u64,
    /// Written but never asserted in any test.
    pub phantom_writes: u64,
    /// Declared but never written nor asserted.
    pub ghost_reads: u64,
}

impl MiddlewareStats {
    /// Bump the counters the scan path maintains.
    pub fn bump(&mut self) {
        self.rounds = self.rounds.saturating_add(1);
        self.phantom_writes = self.phantom_writes.saturating_add(1);
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn rounds_is_counted() {
        let mut s = super::MiddlewareStats::default();
        s.bump();
        assert_eq!(s.rounds, 1);
    }
}
