//! Fixture: hot-path-panic violations in a scan-loop lookalike.

/// Sum candidate slots the panicky way.
pub fn scan(rows: &[Vec<u64>], idxs: &[usize]) -> u64 {
    let mut total = 0u64;
    for row in rows {
        let first = row.first().unwrap();
        total = total.saturating_add(*first);
        for &i in idxs {
            total = total.saturating_add(row[i]);
        }
    }
    let guard = std::env::var("GUARD").expect("guard var");
    if guard.is_empty() {
        panic!("no guard");
    }
    total
}
