//! Fixture: accounting-arith violations in a scheduler lookalike.

/// Budget admission with every arithmetic sin the rule catches.
pub fn admit(reserved: u64, bound: u64, budget: u64, rows: usize) -> bool {
    let next = reserved + bound;
    let scaled = bound * 3;
    let shrunk = budget - bound;
    let rows64 = rows as u64;
    next <= budget && scaled >= rows64 && shrunk > 0
}
