//! Fixture: re-entrant catalog lock, an unmanifested lock, and a stale
//! allow directive.

impl StagingCatalog {
    /// Publish the nested-lock way.
    pub fn publish(&self) {
        let inner = self.inner.lock();
        let again = self.inner.lock();
        drop(again);
        drop(inner);
        let shadow = self.shadow.lock();
        drop(shadow);
    }
}

// analyze:allow(accounting-arith): fixture — stale on purpose: it
// suppresses nothing and must be reported.
/// Count nothing.
pub fn noop() {}
