//! Fixture: io-bypass violations in a middleware lookalike.

use std::fs::File;

/// Open a staged block directly, dodging the staging manager.
pub fn load(path: &str) -> std::io::Result<File> {
    File::open(path)
}

/// Write without accounting.
pub fn dump(path: &str, data: &[u8]) {
    let _ = std::fs::write(path, data);
}
