//! Fixture: lock-order inversion, a guard live across `send`, and a
//! relaxed load on a lease cell.

use std::sync::atomic::Ordering;

impl BudgetArbiter {
    /// Rebalance leases the deadlock-prone way.
    pub fn rebalance(&self, tx: &Sender<usize>) {
        let db = self.db.read();
        let inner = self.inner.lock();
        tx.send(db.len());
        drop(inner);
        let seen = self.lease.load(Ordering::Relaxed);
        let _ = seen;
    }
}
