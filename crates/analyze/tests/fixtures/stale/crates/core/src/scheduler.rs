//! Fixture: a vetted cast whose violation has since been fixed — the
//! directive is stale and must be the tree's only finding.

/// Admit with fully checked arithmetic.
pub fn admit(reserved: u64, bound: u64) -> u64 {
    // analyze:allow(accounting-arith): the cast this vetted is long gone.
    reserved.saturating_add(bound)
}
