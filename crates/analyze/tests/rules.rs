//! Fixture tests for the invariant analyzer: each rule fires exactly where
//! the bad fixtures say it should, `analyze:allow` suppresses exactly its
//! rule and line, and the CLI's `--deny` exit codes match.

use std::path::{Path, PathBuf};
use std::process::Command;

use scaleclass_analyze::{
    analyze_workspace, check_source, RULE_ACCOUNTING_ARITH, RULE_ATOMIC_ORDERING, RULE_ENV_KNOB,
    RULE_GUARD_BLOCKING, RULE_HOT_PATH_PANIC, RULE_IO_BYPASS, RULE_LOCK_ORDER, RULE_STATS_COVERAGE,
};

fn fixture_root(which: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(which)
}

fn fixture(which: &str, rel: &str) -> String {
    std::fs::read_to_string(fixture_root(which).join(rel)).unwrap()
}

/// `(rule, line)` pairs of a report's violations, sorted.
fn fired(report: &scaleclass_analyze::Report) -> Vec<(&'static str, u32)> {
    report.violations.iter().map(|v| (v.rule, v.line)).collect()
}

#[test]
fn accounting_arith_fires_on_each_pattern() {
    let rel = "crates/core/src/scheduler.rs";
    let report = check_source(rel, &fixture("bad", rel));
    assert_eq!(
        fired(&report),
        vec![
            (RULE_ACCOUNTING_ARITH, 5), // reserved + bound
            (RULE_ACCOUNTING_ARITH, 6), // bound * 3
            (RULE_ACCOUNTING_ARITH, 7), // budget - bound
            (RULE_ACCOUNTING_ARITH, 8), // rows as u64
        ]
    );
    assert!(report.violations[3].msg.contains("`as u64`"));
    assert!(report.suppressed.is_empty());
}

#[test]
fn accounting_arith_is_fn_scoped_in_cc() {
    let rel = "crates/core/src/cc.rs";
    // Only the named kernel fns are in scope: the same arithmetic in a
    // neighbouring scan fn must not fire.
    let src = "impl DenseCounts {\n\
               fn add_block(&mut self, base: u32, v: u32, nc: u32) -> u32 {\n\
               base + v * nc\n\
               }\n\
               fn add_row(&mut self, a: u64, b: u64) -> u64 {\n\
               a + b\n\
               }\n\
               }\n\
               pub fn block_growth_bound(rows: u64, attrs: u64) -> u64 {\n\
               rows * attrs\n\
               }\n";
    let report = check_source(rel, src);
    assert_eq!(
        fired(&report),
        vec![
            (RULE_ACCOUNTING_ARITH, 3),  // base + ...
            (RULE_ACCOUNTING_ARITH, 3),  // ... v * nc
            (RULE_ACCOUNTING_ARITH, 10), // rows * attrs
        ]
    );

    // Allow directives inside the scoped fns suppress as usual.
    let src = "fn add_block(x: u32, y: u32) -> u32 {\n\
               x + y // analyze:allow(accounting-arith): proven in-bounds by the max-scan\n\
               }\n";
    let report = check_source(rel, src);
    assert!(report.violations.is_empty(), "{:?}", report.violations);
    assert_eq!(report.suppressed.len(), 1);
}

#[test]
fn hot_path_panic_fires_on_each_pattern() {
    let rel = "crates/core/src/parallel.rs";
    let report = check_source(rel, &fixture("bad", rel));
    assert_eq!(
        fired(&report),
        vec![
            (RULE_HOT_PATH_PANIC, 7),  // .unwrap()
            (RULE_HOT_PATH_PANIC, 10), // row[i] inside the scan loop
            (RULE_HOT_PATH_PANIC, 13), // .expect()
            (RULE_HOT_PATH_PANIC, 15), // panic!
        ]
    );
}

#[test]
fn io_bypass_fires_on_each_pattern() {
    let rel = "crates/core/src/middleware.rs";
    let report = check_source(rel, &fixture("bad", rel));
    assert_eq!(
        fired(&report),
        vec![
            (RULE_IO_BYPASS, 3),  // use std::fs::File
            (RULE_IO_BYPASS, 7),  // File::open
            (RULE_IO_BYPASS, 12), // std::fs::write
        ]
    );
}

#[test]
fn io_bypass_exempts_the_staging_layer() {
    let src = fixture("bad", "crates/core/src/middleware.rs");
    let report = check_source("crates/core/src/staging.rs", &src);
    assert!(report.violations.is_empty(), "staging.rs may do raw I/O");
    let report = check_source("crates/sqldb/src/pager.rs", &src);
    assert!(report.violations.is_empty(), "sqldb may do raw I/O");
}

#[test]
fn stats_coverage_requires_write_and_test_assert() {
    let report = analyze_workspace(&fixture_root("bad")).unwrap();
    let stats: Vec<(u32, &str)> = report
        .violations
        .iter()
        .filter(|v| v.rule == RULE_STATS_COVERAGE)
        .map(|v| (v.line, v.msg.as_str()))
        .collect();
    assert_eq!(stats.len(), 3, "stats findings: {stats:?}");
    // `phantom_writes` is written but never asserted.
    assert_eq!(stats[0].0, 9);
    assert!(stats[0].1.contains("phantom_writes"));
    assert!(stats[0].1.contains("never asserted"));
    // `ghost_reads` is neither written nor asserted.
    assert_eq!(stats[1].0, 11);
    assert!(stats[1].1.contains("ghost_reads"));
    assert!(stats[1].1.contains("never"));
    assert_eq!(stats[2].0, 11);
    // `rounds` (written + asserted) must NOT be flagged.
    assert!(!stats
        .iter()
        .any(|(_, m)| m.contains("`MiddlewareStats.rounds`")));
}

#[test]
fn lock_order_guard_blocking_and_atomic_fire_at_pinned_lines() {
    let rel = "crates/core/src/session.rs";
    let report = check_source(rel, &fixture("bad", rel));
    assert_eq!(
        fired(&report),
        vec![
            (RULE_LOCK_ORDER, 10),      // inner.lock() while db guard live
            (RULE_GUARD_BLOCKING, 11),  // tx.send under the inner guard
            (RULE_ATOMIC_ORDERING, 13), // lease.load(Ordering::Relaxed)
        ]
    );
    assert!(report.violations[0].msg.contains("contradicts LOCK_ORDER"));
    assert!(report.violations[0].msg.contains("`arbiter.inner`"));
    assert!(report.violations[1].msg.contains("`.send(`"));
    assert!(report.violations[1].msg.contains("held since line 10"));
    assert!(report.violations[2].msg.contains("Relaxed"));
}

#[test]
fn lock_order_reentrant_and_unknown_lock() {
    let rel = "crates/core/src/catalog.rs";
    let report = check_source(rel, &fixture("bad", rel));
    assert_eq!(
        fired(&report),
        vec![
            (RULE_LOCK_ORDER, 8),  // second inner.lock() under the first
            (RULE_LOCK_ORDER, 11), // shadow.lock() matches no manifest row
        ]
    );
    assert!(report.violations[0].msg.contains("re-entrant"));
    assert!(report.violations[1].msg.contains("LOCK_SITES"));
    // The fixture's deliberately stale directive is reported as such.
    assert_eq!(report.stale.len(), 1);
    assert_eq!(report.stale[0].1.line, 16);
    assert_eq!(report.stale[0].1.rule, "accounting-arith");
}

#[test]
fn ordered_acquisition_and_dropped_guards_are_clean() {
    let rel = "crates/core/src/session.rs";
    let report = check_source(rel, &fixture("clean", rel));
    assert!(report.violations.is_empty(), "{:?}", report.violations);
    // The vetted Relaxed load is suppressed, not dropped.
    assert_eq!(report.suppressed.len(), 1);
    assert_eq!(report.suppressed[0].0.rule, RULE_ATOMIC_ORDERING);
    assert!(report.stale.is_empty());
}

#[test]
fn guard_liveness_ends_at_scope_statement_and_drop() {
    let rel = "crates/core/src/parallel.rs";
    // A guard bound inside a block dies at the block's close brace.
    let src = "pub fn f(&self, tx: &Sender<u64>) {\n\
               {\n\
               let g = self.evictable.lock();\n\
               g.push(1);\n\
               }\n\
               tx.send(0);\n\
               }\n";
    let report = check_source(rel, src);
    assert!(report.violations.is_empty(), "{:?}", report.violations);

    // An unbound acquisition is a statement-scoped temporary.
    let src = "pub fn f(&self, tx: &Sender<u64>) {\n\
               self.evictable.lock().clear();\n\
               tx.send(0);\n\
               }\n";
    let report = check_source(rel, src);
    assert!(report.violations.is_empty(), "{:?}", report.violations);

    // ...but later in the same statement the temporary is still live.
    let src = "pub fn f(&self, rx: &Receiver<u64>) {\n\
               merge(self.evictable.lock(), rx.recv());\n\
               }\n";
    let report = check_source(rel, src);
    assert_eq!(fired(&report), vec![(RULE_GUARD_BLOCKING, 2)]);

    // `path.join(x)` is not a thread join; zero-arg `.join()` is.
    let src = "pub fn f(&self, h: Handle, p: &Path) {\n\
               let g = self.evictable.lock();\n\
               let q = p.join(g.name());\n\
               drop(g);\n\
               h.join();\n\
               }\n";
    let report = check_source(rel, src);
    assert!(report.violations.is_empty(), "{:?}", report.violations);
    let src = "pub fn f(&self, h: Handle) {\n\
               let g = self.evictable.lock();\n\
               h.join();\n\
               }\n";
    let report = check_source(rel, src);
    assert_eq!(fired(&report), vec![(RULE_GUARD_BLOCKING, 3)]);
}

#[test]
fn nested_pool_locks_follow_the_manifest_order() {
    let rel = "crates/core/src/parallel.rs";
    // evictable → evicted matches LOCK_ORDER (the relieve_pressure shape).
    let src = "pub fn relieve(&self) {\n\
               let ev = self.evictable.lock();\n\
               let done = self.evicted.lock();\n\
               drop(done);\n\
               drop(ev);\n\
               }\n";
    let report = check_source(rel, src);
    assert!(report.violations.is_empty(), "{:?}", report.violations);

    // The inverse nesting contradicts it.
    let src = "pub fn relieve(&self) {\n\
               let done = self.evicted.lock();\n\
               let ev = self.evictable.lock();\n\
               drop(ev);\n\
               drop(done);\n\
               }\n";
    let report = check_source(rel, src);
    assert_eq!(fired(&report), vec![(RULE_LOCK_ORDER, 3)]);
}

#[test]
fn env_knob_requires_config_and_readme() {
    let bad = analyze_workspace(&fixture_root("bad")).unwrap();
    let env: Vec<(&str, u32, &str)> = bad
        .violations
        .iter()
        .filter(|v| v.rule == RULE_ENV_KNOB)
        .map(|v| (v.file.as_str(), v.line, v.msg.as_str()))
        .collect();
    assert_eq!(env.len(), 2, "env findings: {env:?}");
    assert!(env
        .iter()
        .all(|(f, l, _)| *f == "crates/core/src/envknob.rs" && *l == 5));
    assert!(env[0].2.contains("SCALECLASS_PHANTOM"));
    assert!(env[0].2.contains("config.rs"));
    assert!(env[1].2.contains("not documented in README.md"));

    // The clean tree's knob is wired and documented: no findings.
    let clean = analyze_workspace(&fixture_root("clean")).unwrap();
    assert!(!clean.violations.iter().any(|v| v.rule == RULE_ENV_KNOB));
}

#[test]
fn stale_allow_detection_across_trees() {
    // The stale tree has zero violations and exactly one stale directive.
    let stale = analyze_workspace(&fixture_root("stale")).unwrap();
    assert!(stale.violations.is_empty(), "{:?}", stale.violations);
    assert_eq!(stale.stale.len(), 1);
    assert_eq!(stale.stale[0].0, "crates/core/src/scheduler.rs");
    assert_eq!(stale.stale[0].1.line, 6);

    // Every clean-tree directive still earns its keep.
    let clean = analyze_workspace(&fixture_root("clean")).unwrap();
    assert!(clean.stale.is_empty(), "{:?}", clean.stale);
}

#[test]
fn bad_tree_fires_every_rule_and_clean_tree_is_clean() {
    let bad = analyze_workspace(&fixture_root("bad")).unwrap();
    for rule in [
        RULE_IO_BYPASS,
        RULE_ACCOUNTING_ARITH,
        RULE_HOT_PATH_PANIC,
        RULE_STATS_COVERAGE,
        RULE_LOCK_ORDER,
        RULE_GUARD_BLOCKING,
        RULE_ATOMIC_ORDERING,
        RULE_ENV_KNOB,
    ] {
        assert!(
            bad.violations.iter().any(|v| v.rule == rule),
            "bad tree should trip {rule}"
        );
    }

    let clean = analyze_workspace(&fixture_root("clean")).unwrap();
    assert!(
        clean.violations.is_empty(),
        "clean tree should pass: {:?}",
        clean.violations
    );
    // The clean tree exercises the suppression path: one vetted cast, one
    // vetted index, and one vetted relaxed load, each with a reason the
    // inventory preserves.
    assert_eq!(clean.suppressed.len(), 3);
    assert!(clean
        .suppressed
        .iter()
        .all(|(_, reason)| !reason.is_empty()));
    assert_eq!(clean.allows.len(), 3);
    assert!(clean.stale.is_empty());
}

#[test]
fn allow_suppresses_only_its_rule_and_line() {
    let rel = "crates/core/src/scheduler.rs";
    // Same-line directive suppresses the violation on that line only.
    let src = "pub fn f(a: u64, b: u64) -> u64 {\n\
               let x = a + b; // analyze:allow(accounting-arith): vetted\n\
               x + a\n\
               }\n";
    let report = check_source(rel, src);
    assert_eq!(fired(&report), vec![(RULE_ACCOUNTING_ARITH, 3)]);
    assert_eq!(report.suppressed.len(), 1);

    // A directive for a different rule suppresses nothing.
    let src = "pub fn f(a: u64, b: u64) -> u64 {\n\
               // analyze:allow(hot-path-panic): wrong rule on purpose\n\
               a + b\n\
               }\n";
    let report = check_source(rel, src);
    assert_eq!(fired(&report), vec![(RULE_ACCOUNTING_ARITH, 3)]);

    // A standalone directive covers the next code line through comments.
    let src = "pub fn f(a: u64, b: u64) -> u64 {\n\
               // analyze:allow(accounting-arith): vetted\n\
               // (more commentary in between)\n\
               a + b\n\
               }\n";
    let report = check_source(rel, src);
    assert!(report.violations.is_empty());
    assert_eq!(report.suppressed.len(), 1);

    // ...but not past a non-comment line.
    let src = "pub fn f(a: u64, b: u64) -> u64 {\n\
               // analyze:allow(accounting-arith): vetted\n\
               let x = a;\n\
               x + b\n\
               }\n";
    let report = check_source(rel, src);
    assert_eq!(fired(&report), vec![(RULE_ACCOUNTING_ARITH, 4)]);
}

#[test]
fn allow_without_reason_is_rejected_and_does_not_suppress() {
    let rel = "crates/core/src/scheduler.rs";
    let src = "pub fn f(a: u64, b: u64) -> u64 {\n\
               a + b // analyze:allow(accounting-arith)\n\
               }\n";
    let report = check_source(rel, src);
    let rules: Vec<&str> = report.violations.iter().map(|v| v.rule).collect();
    assert!(rules.contains(&RULE_ACCOUNTING_ARITH), "not suppressed");
    assert!(
        rules.contains(&"allow-syntax"),
        "malformed directive flagged"
    );
}

#[test]
fn cli_deny_exit_codes() {
    let bin = env!("CARGO_BIN_EXE_scaleclass-analyze");
    let run = |args: &[&str]| Command::new(bin).args(args).output().unwrap();

    let bad_root = fixture_root("bad");
    let bad = bad_root.to_str().unwrap();
    let clean_root = fixture_root("clean");
    let clean = clean_root.to_str().unwrap();

    let out = run(&["--deny", bad]);
    assert_eq!(out.status.code(), Some(2), "violations + --deny exit 2");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("crates/core/src/scheduler.rs:5: [accounting-arith]"));

    let out = run(&[bad]);
    assert_eq!(out.status.code(), Some(0), "without --deny, report only");

    let out = run(&["--deny", clean]);
    assert_eq!(out.status.code(), Some(0), "clean tree passes --deny");

    let out = run(&["--deny", "--allows", clean]);
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("analyze:allow inventory"));
    assert!(stdout.contains("fixture"), "inventory shows the reasons");

    // A tree whose only finding is a stale directive exits 3 under --deny
    // (violations would take precedence with exit 2).
    let stale_root = fixture_root("stale");
    let stale = stale_root.to_str().unwrap();
    let out = run(&["--deny", stale]);
    assert_eq!(out.status.code(), Some(3), "stale-only tree exits 3");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("[stale-allow]"));
    assert!(stdout.contains("suppresses no violation"));
    let out = run(&[stale]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "stale without --deny reports only"
    );

    let out = run(&["--deny", "/nonexistent/path/for/sure"]);
    assert_eq!(out.status.code(), Some(3), "unreadable root exits 3");
}

#[test]
fn cli_json_output() {
    let bin = env!("CARGO_BIN_EXE_scaleclass-analyze");
    let run = |args: &[&str]| Command::new(bin).args(args).output().unwrap();

    let bad_root = fixture_root("bad");
    let out = run(&["--json", bad_root.to_str().unwrap()]);
    let stdout = String::from_utf8(out.stdout).unwrap();
    // A flat JSON array of {file, line, rule, message} records and nothing
    // else on stdout (CI pipes this straight into jq).
    assert!(stdout.trim_start().starts_with('['));
    assert!(stdout.trim_end().ends_with(']'));
    assert!(
        !stdout.contains("scaleclass-analyze:"),
        "no summary in json mode"
    );
    assert!(stdout.contains(r#""file":"crates/core/src/session.rs","line":10,"rule":"lock-order""#));
    assert!(stdout.contains(r#""rule":"guard-across-blocking""#));
    assert!(stdout.contains(r#""rule":"atomic-ordering""#));
    assert!(stdout.contains(r#""rule":"env-knob""#));
    // The bad tree's stale directive rides along as a stale-allow record.
    assert!(
        stdout.contains(r#""file":"crates/core/src/catalog.rs","line":16,"rule":"stale-allow""#)
    );
    // Messages with quotes/backticks survive escaping: every quote in the
    // payload is either a structural quote or escaped.
    assert!(!stdout.contains("\n\""), "records are comma-joined");

    let clean_root = fixture_root("clean");
    let out = run(&["--json", clean_root.to_str().unwrap()]);
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert_eq!(stdout.trim(), "[]", "clean tree emits an empty array");
}
