//! A minimal hand-rolled Rust lexer.
//!
//! The analyzer cannot depend on `syn`/`proc-macro2` (no registry access in
//! the build environment, see `vendor/README.md`), so it carries its own
//! tokenizer. It understands exactly as much Rust as the rules need:
//!
//! - line comments (`//`, `///`, `//!`) and *nested* block comments,
//! - string literals (plain, raw `r#"…"#`, byte, C-string) with escapes,
//! - char literals vs. lifetimes (`'a'` vs `'a`),
//! - identifiers/keywords, numbers, and single-char punctuation,
//! - line numbers for every token and comment.
//!
//! Comments are not discarded: `// analyze:allow(<rule>): <reason>`
//! directives are extracted during lexing, and the set of comment-only
//! lines is recorded so a standalone allow comment can suppress a
//! violation on the next code line.

/// Kinds of token the rules care about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fs`, `as`, `for`, `unwrap`, …).
    Ident,
    /// Lifetime such as `'a` or `'_` (distinguished from char literals).
    Lifetime,
    /// Integer or float literal, any base or suffix.
    Number,
    /// String / raw-string / byte-string / char literal.
    Literal,
    /// A single punctuation character (`+`, `[`, `::` is two `:` tokens…).
    Punct,
}

/// One lexed token: kind, source text range, and 1-based line number.
#[derive(Debug, Clone, Copy)]
pub struct Tok {
    /// What sort of token this is.
    pub kind: TokKind,
    /// Byte offset of the token start in the source.
    pub start: usize,
    /// Byte offset one past the token end.
    pub end: usize,
    /// 1-based line the token starts on.
    pub line: u32,
}

/// An `// analyze:allow(<rule>): <reason>` directive found in a comment.
#[derive(Debug, Clone)]
pub struct AllowDirective {
    /// 1-based line the directive's comment *ends* on.
    pub line: u32,
    /// Rule name inside the parentheses, e.g. `hot-path-panic`.
    pub rule: String,
    /// Justification after the trailing `:` (may be empty — rules reject that).
    pub reason: String,
    /// True when the comment is the only thing on its line, in which case
    /// the directive also covers the next code line below it.
    pub standalone: bool,
}

/// Output of [`lex`]: the token stream plus comment-derived side tables.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All non-comment tokens in source order.
    pub toks: Vec<Tok>,
    /// All `analyze:allow` directives found in comments.
    pub allows: Vec<AllowDirective>,
    /// 1-based lines that contain only whitespace and/or comments.
    pub comment_only_lines: Vec<u32>,
}

impl Lexed {
    /// Source text of token `i` (panics only on out-of-range internal bugs).
    pub fn text<'s>(&self, src: &'s str, i: usize) -> &'s str {
        let t = &self.toks[i];
        &src[t.start..t.end]
    }
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

/// Lex `src` into tokens, allow-directives, and comment-only line info.
///
/// The lexer never fails: malformed input degrades to punctuation tokens,
/// which at worst produces a spurious diagnostic pointing at real code.
pub fn lex(src: &str) -> Lexed {
    let bytes = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;
    // Tracks whether the current line has seen any non-comment token, so we
    // can record comment-only lines for standalone-allow suppression.
    let mut line_has_code = false;
    let mut line_has_comment = false;
    let mut cur_line_no: u32 = 1;

    // `$next_comment` is whether the following line starts inside a comment
    // (true only while crossing newlines within a block comment).
    macro_rules! end_line {
        ($next_comment:expr) => {
            if !line_has_code && line_has_comment {
                out.comment_only_lines.push(cur_line_no);
            }
            line_has_code = false;
            line_has_comment = $next_comment;
        };
    }

    while i < bytes.len() {
        let c = bytes[i] as char;
        if c == '\n' {
            end_line!(false);
            line += 1;
            cur_line_no = line;
            i += 1;
            continue;
        }
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        // Line comment.
        if c == '/' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
            let start = i;
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
            scan_allow(&src[start..i], line, !line_has_code, &mut out.allows);
            line_has_comment = true;
            continue;
        }
        // Block comment (nested).
        if c == '/' && i + 1 < bytes.len() && bytes[i + 1] == b'*' {
            let start = i;
            let standalone = !line_has_code;
            let mut depth = 1usize;
            line_has_comment = true;
            i += 2;
            while i < bytes.len() && depth > 0 {
                if bytes[i] == b'\n' {
                    end_line!(true);
                    line += 1;
                    cur_line_no = line;
                    i += 1;
                } else if bytes[i] == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'*' {
                    depth += 1;
                    i += 2;
                } else if bytes[i] == b'*' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            scan_allow(&src[start..i], line, standalone, &mut out.allows);
            line_has_comment = true;
            continue;
        }
        // Raw / byte / C strings: r"..", r#".."#, br".."), b"..", c"..".
        if let Some((len, lines)) = raw_string_len(&src[i..]) {
            out.toks.push(Tok {
                kind: TokKind::Literal,
                start: i,
                end: i + len,
                line,
            });
            for _ in 0..lines {
                end_line!(false);
                line += 1;
                cur_line_no = line;
            }
            line_has_code = true;
            i += len;
            continue;
        }
        // Plain string literal (possibly b"…" handled above only for raw).
        if c == '"' || (c == 'b' && i + 1 < bytes.len() && bytes[i + 1] == b'"') {
            let start = i;
            if c == 'b' {
                i += 1;
            }
            i += 1; // opening quote
            while i < bytes.len() {
                match bytes[i] {
                    b'\\' => i += 2,
                    b'"' => {
                        i += 1;
                        break;
                    }
                    b'\n' => {
                        end_line!(false);
                        line += 1;
                        cur_line_no = line;
                        i += 1;
                    }
                    _ => i += 1,
                }
            }
            out.toks.push(Tok {
                kind: TokKind::Literal,
                start,
                end: i,
                line,
            });
            line_has_code = true;
            continue;
        }
        // Char literal vs lifetime.
        if c == '\'' {
            let start = i;
            // Lifetime: 'ident not followed by closing quote.
            let mut j = i + 1;
            let rest: &str = &src[j..];
            let mut chars = rest.chars();
            if let Some(c1) = chars.next() {
                if is_ident_start(c1) {
                    let mut k = j + c1.len_utf8();
                    while k < src.len() {
                        let ck = src[k..].chars().next().unwrap_or(' ');
                        if is_ident_continue(ck) {
                            k += ck.len_utf8();
                        } else {
                            break;
                        }
                    }
                    if !src[k..].starts_with('\'') {
                        // Lifetime.
                        out.toks.push(Tok {
                            kind: TokKind::Lifetime,
                            start,
                            end: k,
                            line,
                        });
                        line_has_code = true;
                        i = k;
                        continue;
                    }
                }
            }
            // Char literal: consume until closing quote, honoring escapes.
            j = i + 1;
            if j < bytes.len() && bytes[j] == b'\\' {
                j += 2;
                while j < bytes.len() && bytes[j] != b'\'' {
                    j += 1;
                }
                j += 1;
            } else {
                let cl = src[j..].chars().next().map_or(1, char::len_utf8);
                j += cl;
                if j < bytes.len() && bytes[j] == b'\'' {
                    j += 1;
                }
            }
            out.toks.push(Tok {
                kind: TokKind::Literal,
                start,
                end: j.min(src.len()),
                line,
            });
            line_has_code = true;
            i = j.min(src.len());
            continue;
        }
        // Number literal.
        if c.is_ascii_digit() {
            let start = i;
            while i < bytes.len() {
                let b = bytes[i] as char;
                // Accept digits, underscores, radix/exponent letters, and a
                // dot followed by a digit (so `0..n` range syntax stops).
                let dot_digit =
                    b == '.' && i + 1 < bytes.len() && (bytes[i + 1] as char).is_ascii_digit();
                if b.is_ascii_alphanumeric() || b == '_' || dot_digit {
                    i += 1;
                } else {
                    break;
                }
            }
            out.toks.push(Tok {
                kind: TokKind::Number,
                start,
                end: i,
                line,
            });
            line_has_code = true;
            continue;
        }
        // Identifier / keyword (incl. r#ident raw identifiers).
        if is_ident_start(c) {
            let start = i;
            while i < src.len() {
                let ck = src[i..].chars().next().unwrap_or(' ');
                if is_ident_continue(ck) {
                    i += ck.len_utf8();
                } else {
                    break;
                }
            }
            out.toks.push(Tok {
                kind: TokKind::Ident,
                start,
                end: i,
                line,
            });
            line_has_code = true;
            continue;
        }
        // Everything else: single-char punctuation.
        out.toks.push(Tok {
            kind: TokKind::Punct,
            start: i,
            end: i + c.len_utf8(),
            line,
        });
        line_has_code = true;
        i += c.len_utf8();
    }
    if !line_has_code && line_has_comment {
        out.comment_only_lines.push(cur_line_no);
    }
    out
}

/// If `rest` starts with a raw/byte-raw/c-raw string literal, return its
/// total byte length and the number of embedded newlines.
fn raw_string_len(rest: &str) -> Option<(usize, usize)> {
    let b = rest.as_bytes();
    let mut p = 0usize;
    // Optional b/c/br prefix before r.
    if p < b.len() && (b[p] == b'b' || b[p] == b'c') {
        p += 1;
    }
    if p >= b.len() || b[p] != b'r' {
        return None;
    }
    p += 1;
    let mut hashes = 0usize;
    while p < b.len() && b[p] == b'#' {
        hashes += 1;
        p += 1;
    }
    if p >= b.len() || b[p] != b'"' {
        return None;
    }
    p += 1;
    let closer: Vec<u8> = std::iter::once(b'"')
        .chain(std::iter::repeat(b'#').take(hashes))
        .collect();
    let mut lines = 0usize;
    while p < b.len() {
        if b[p] == b'\n' {
            lines += 1;
            p += 1;
            continue;
        }
        if b[p..].starts_with(&closer) {
            return Some((p + closer.len(), lines));
        }
        p += 1;
    }
    Some((b.len(), lines))
}

/// Extract `analyze:allow(<rule>): <reason>` from a comment's text.
fn scan_allow(comment: &str, end_line: u32, standalone: bool, out: &mut Vec<AllowDirective>) {
    const NEEDLE: &str = "analyze:allow(";
    let Some(pos) = comment.find(NEEDLE) else {
        return;
    };
    let after = &comment[pos + NEEDLE.len()..];
    let Some(close) = after.find(')') else { return };
    let rule = after[..close].trim().to_string();
    // Documentation that *describes* the syntax (`analyze:allow(<rule>)`)
    // is not a directive; real rule names are kebab-case ASCII.
    if rule.is_empty() || !rule.chars().all(|c| c.is_ascii_lowercase() || c == '-') {
        return;
    }
    let mut reason = String::new();
    let tail = &after[close + 1..];
    if let Some(stripped) = tail.trim_start().strip_prefix(':') {
        reason = stripped.trim().trim_end_matches("*/").trim().to_string();
    }
    out.push(AllowDirective {
        line: end_line,
        rule,
        reason,
        standalone,
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        let l = lex(src);
        (0..l.toks.len())
            .map(|i| l.text(src, i).to_string())
            .collect()
    }

    #[test]
    fn basic_tokens() {
        assert_eq!(
            texts("let x = a + 1;"),
            ["let", "x", "=", "a", "+", "1", ";"]
        );
    }

    #[test]
    fn comments_are_stripped_but_lines_tracked() {
        let l = lex("// hi\nlet x = 1; // trailing\n/* block\nstill block */\nlet y;\n");
        assert_eq!(l.comment_only_lines, vec![1, 3, 4]);
        assert_eq!(l.toks.first().map(|t| t.line), Some(2));
    }

    #[test]
    fn nested_block_comment() {
        let l = lex("/* a /* b */ c */ let z;");
        let toks: Vec<_> = (0..l.toks.len())
            .map(|i| l.text("/* a /* b */ c */ let z;", i))
            .collect();
        assert_eq!(toks, ["let", "z", ";"]);
    }

    #[test]
    fn strings_and_chars_and_lifetimes() {
        let src = r#"let s = "a // not comment"; let c = '\n'; fn f<'a>(x: &'a str) {}"#;
        let l = lex(src);
        let kinds: Vec<_> = l.toks.iter().map(|t| t.kind).collect();
        assert!(kinds.contains(&TokKind::Literal));
        assert!(kinds.contains(&TokKind::Lifetime));
        // The string contents must not have been tokenized.
        assert!(!texts(src).iter().any(|t| t == "not"));
    }

    #[test]
    fn raw_strings() {
        let src = "let s = r#\"has \"quotes\" and // slashes\"#; let t = 1;";
        let l = lex(src);
        let has_t = (0..l.toks.len()).any(|i| l.text(src, i) == "t");
        assert!(has_t);
        assert!(!(0..l.toks.len()).any(|i| l.text(src, i) == "slashes"));
    }

    #[test]
    fn multiline_raw_string_line_numbers() {
        let src = "let s = r\"line1\nline2\";\nlet z = 9;";
        let l = lex(src);
        let z = l
            .toks
            .iter()
            .enumerate()
            .find(|(i, _)| l.text(src, *i) == "z")
            .map(|(_, t)| t.line);
        assert_eq!(z, Some(3));
    }

    #[test]
    fn raw_string_lock_shapes_do_not_tokenize() {
        // Guard tracking keys off `.lock()` / `let g =` token shapes; lock
        // code quoted inside a raw string must produce no such tokens.
        let src = "let msg = r#\"let g = self.inner.lock(); drop(g)\"#;\nlet next = 2;";
        let l = lex(src);
        let idents: Vec<&str> = l
            .toks
            .iter()
            .enumerate()
            .filter(|(_, t)| t.kind == TokKind::Ident)
            .map(|(i, _)| l.text(src, i))
            .collect();
        assert_eq!(idents, ["let", "msg", "let", "next"]);
    }

    #[test]
    fn raw_string_with_double_hash_delimiter() {
        let src = "let s = r##\"ends with \"# not here\"##; let after = 1;";
        let l = lex(src);
        assert!((0..l.toks.len()).any(|i| l.text(src, i) == "after"));
        assert!(!(0..l.toks.len()).any(|i| l.text(src, i) == "here"));
    }

    #[test]
    fn nested_block_comment_hides_guard_shapes() {
        let src = "/* outer /* let g = x.lock(); */ still comment */ let real = 1;";
        let l = lex(src);
        let idents: Vec<&str> = l
            .toks
            .iter()
            .enumerate()
            .filter(|(_, t)| t.kind == TokKind::Ident)
            .map(|(i, _)| l.text(src, i))
            .collect();
        assert_eq!(idents, ["let", "real"]);
    }

    #[test]
    fn lifetime_ticks_are_not_char_literals() {
        // `'a` must lex as a Lifetime token, not open a char literal that
        // would swallow the following `.lock()` call.
        let src = "fn f<'a>(g: &'a Guard) { g.inner.lock(); }";
        let l = lex(src);
        let kinds: Vec<TokKind> = l.toks.iter().map(|t| t.kind).collect();
        assert!(kinds.contains(&TokKind::Lifetime));
        assert!((0..l.toks.len()).any(|i| l.text(src, i) == "lock"));
        // And a real char literal still lexes as one token.
        let src2 = "let c = 'x'; let d = '\\'';";
        let l2 = lex(src2);
        let lits = l2
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Literal)
            .count();
        assert_eq!(lits, 2);
    }

    #[test]
    fn allow_directive_parsing() {
        let src = "// analyze:allow(io-bypass): bench artifact\nfoo();\nbar(); // analyze:allow(hot-path-panic): checked above\n";
        let l = lex(src);
        assert_eq!(l.allows.len(), 2);
        assert_eq!(l.allows[0].rule, "io-bypass");
        assert_eq!(l.allows[0].reason, "bench artifact");
        assert!(l.allows[0].standalone);
        assert_eq!(l.allows[1].rule, "hot-path-panic");
        assert!(!l.allows[1].standalone);
        assert_eq!(l.allows[1].line, 3);
    }

    #[test]
    fn allow_without_reason_is_captured_empty() {
        let l = lex("// analyze:allow(accounting-arith)\nx();\n");
        assert_eq!(l.allows.len(), 1);
        assert!(l.allows[0].reason.is_empty());
    }

    #[test]
    fn shebang_like_punct_does_not_crash() {
        let l = lex("#![warn(missing_docs)]\n#[cfg(test)]\nmod t {}\n");
        assert!(l.toks.len() > 5);
    }
}
