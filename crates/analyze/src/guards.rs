//! Guard-aware structural pass: lock-guard binding and liveness tracking.
//!
//! The concurrency rules (DESIGN.md §14) need to know *which lock guards
//! are live* at each point of a function, not just which tokens appear.
//! This module walks a file's token stream once, tracking:
//!
//! - **bindings** — `let [mut] g = <acquisition>;` keeps the guard live
//!   until the binding's brace-depth scope ends or an explicit `drop(g)`;
//! - **temporaries** — an acquisition not bound by `let`
//!   (`self.lock().stats`) is live to the end of its statement;
//! - **acquisition edges** — every acquisition made while another guard is
//!   live contributes a `held → acquired` edge to the cross-file lock
//!   graph checked against the `LOCK_ORDER` manifest in [`crate::rules`];
//! - **blocking shapes** — `send(` / `recv(` / `join()` / `wait*(` /
//!   `File::` / `read_to_end(` reached while any guard is live (the shapes
//!   that turn a slow reader into a stalled arbiter).
//!
//! Lock identity is lexical: the analyzer has no type information, so the
//! `LOCK_SITES` manifest maps call shapes (method name, receiver tail
//! identifier, file) to canonical lock names. A `.lock()` whose receiver
//! matches no manifest row is itself reported, so new locks cannot ship
//! unordered. The pass is intra-function and over-approximates liveness
//! (a `let`-bound non-guard result of a manifest call is treated as a
//! guard until scope end); suppress genuine false positives with
//! `analyze:allow` and leave the interprocedural blind spots to the
//! ThreadSanitizer CI job.

use crate::lexer::TokKind;
use crate::rules::FileCtx;

/// One row of the `LOCK_SITES` manifest ([`crate::rules::LOCK_SITES`]):
/// how a lexical call shape maps to a named lock.
#[derive(Debug, Clone, Copy)]
pub struct LockSite {
    /// Method name at the call site (`lock`, `db_read`, …).
    pub method: &'static str,
    /// Required receiver tail identifier (`inner`, `db`, …); `None`
    /// matches any receiver.
    pub recv: Option<&'static str>,
    /// Restrict this row to one workspace-relative file; `None` = any.
    pub file: Option<&'static str>,
    /// Canonical lock name, as listed in `LOCK_ORDER`.
    pub lock: &'static str,
    /// True when the call returns the guard (a `let` binding keeps it
    /// live); false for helpers that acquire and release internally.
    pub binds: bool,
}

/// A `held → acquired` edge in the lock-acquisition graph.
#[derive(Debug, Clone)]
pub struct LockEdge {
    /// Lock whose guard was live when the acquisition happened.
    pub held: &'static str,
    /// Line the held guard was bound on.
    pub held_line: u32,
    /// Lock being acquired.
    pub acquired: &'static str,
    /// Workspace-relative file of the acquisition site.
    pub file: String,
    /// Line of the acquisition site.
    pub line: u32,
}

/// A blocking call shape reached while a guard was live.
#[derive(Debug, Clone)]
pub struct BlockingHit {
    /// Line of the blocking call.
    pub line: u32,
    /// The shape that matched (`.send(`, `File::`, …).
    pub shape: String,
    /// Lock whose guard was live.
    pub guard_lock: &'static str,
    /// Line the live guard was bound on.
    pub guard_line: u32,
}

/// Everything the guard pass found in one file.
#[derive(Debug, Default)]
pub struct GuardScan {
    /// Acquisition edges for the cross-file lock graph.
    pub edges: Vec<LockEdge>,
    /// Blocking shapes reached under a live guard.
    pub blocking: Vec<BlockingHit>,
    /// `.lock()` calls whose receiver matches no manifest row:
    /// `(line, receiver)`.
    pub unknown: Vec<(u32, String)>,
}

/// A guard currently live during the scan.
struct Guard {
    /// Binding name; `None` for statement-scoped temporaries.
    name: Option<String>,
    lock: &'static str,
    /// Brace depth the binding lives at (scope end kills it).
    depth: i64,
    line: u32,
}

/// The blocking shapes of DESIGN.md §14, as display labels.
fn blocking_shape(ctx: &FileCtx, i: usize) -> Option<String> {
    let t = ctx.text(i);
    if t == "File" && ctx.path_sep(i + 1) {
        return Some("File::".to_string());
    }
    if i > 0 && ctx.is_punct(i - 1, '.') && ctx.is_punct(i + 1, '(') {
        match t {
            "send" | "recv" | "read_to_end" => return Some(format!(".{t}(")),
            // Zero-arg `.join()` only: `path.join(x)` / `"".join(x)` are
            // not thread joins.
            "join" if ctx.is_punct(i + 2, ')') => return Some(".join()".to_string()),
            _ if t.starts_with("wait") => return Some(format!(".{t}(")),
            _ => {}
        }
    }
    None
}

/// Walk one file's tokens tracking guard liveness against `sites`.
///
/// Test code contributes no events (bindings, edges, blocking hits, or
/// unknown locks): tests routinely hold guards across asserts on purpose.
pub(crate) fn scan_guards(ctx: &FileCtx, sites: &[LockSite]) -> GuardScan {
    let n = ctx.lx.toks.len();
    let mut out = GuardScan::default();
    let mut live: Vec<Guard> = Vec::new();
    let mut depth: i64 = 0;
    // `let [mut] name [: Ty] = …` seen in the current statement: candidate
    // binding `(name, depth-at-let)` for an acquisition in the initializer.
    let mut pending_let: Option<(String, i64)> = None;

    for i in 0..n {
        if ctx.is_punct(i, '{') {
            depth += 1;
            continue;
        }
        if ctx.is_punct(i, '}') {
            depth -= 1;
            live.retain(|g| g.depth <= depth);
            continue;
        }
        if ctx.is_punct(i, ';') {
            // End of statement: temporaries die, the binding candidate
            // (consumed or not) is gone.
            live.retain(|g| g.name.is_some() || g.depth < depth);
            pending_let = None;
            continue;
        }
        if ctx.lx.toks[i].kind != TokKind::Ident {
            continue;
        }
        let t = ctx.text(i);
        if t == "let" {
            let mut j = i + 1;
            if ctx.is_ident(j, "mut") {
                j += 1;
            }
            // Plain `let name =` / `let name: Ty =`; pattern bindings
            // (`let Some(g) = …`, tuples) never bind a tracked guard.
            if j < n && ctx.lx.toks[j].kind == TokKind::Ident {
                let eq = ctx.is_punct(j + 1, '=') && !ctx.is_punct(j + 2, '=');
                let typed = ctx.is_punct(j + 1, ':') && !ctx.is_punct(j + 2, ':');
                if eq || typed {
                    pending_let = Some((ctx.text(j).to_string(), depth));
                }
            }
            continue;
        }
        // `drop(g)` / `mem::drop(g)` releases g early.
        if t == "drop"
            && !ctx.is_punct(i.wrapping_sub(1), '.')
            && ctx.is_punct(i + 1, '(')
            && i + 3 < n
            && ctx.lx.toks[i + 2].kind == TokKind::Ident
            && ctx.is_punct(i + 3, ')')
        {
            let name = ctx.text(i + 2);
            live.retain(|g| g.name.as_deref() != Some(name));
            continue;
        }
        if let Some(shape) = blocking_shape(ctx, i) {
            if !ctx.test[i] {
                if let Some(g) = live.last() {
                    out.blocking.push(BlockingHit {
                        line: ctx.line(i),
                        shape,
                        guard_lock: g.lock,
                        guard_line: g.line,
                    });
                }
            }
            continue;
        }
        // Method-call shape `.name(…` — the only acquisition surface.
        if i > 0 && ctx.is_punct(i - 1, '.') && ctx.is_punct(i + 1, '(') {
            let recv = if i >= 2 && ctx.lx.toks[i - 2].kind == TokKind::Ident {
                Some(ctx.text(i - 2))
            } else {
                None
            };
            let site = sites.iter().find(|s| {
                let file_ok = match s.file {
                    Some(f) => f == ctx.rel,
                    None => true,
                };
                let recv_ok = match s.recv {
                    Some(r) => recv == Some(r),
                    None => true,
                };
                s.method == t && file_ok && recv_ok
            });
            if ctx.test[i] {
                continue;
            }
            match site {
                Some(site) => {
                    for g in &live {
                        out.edges.push(LockEdge {
                            held: g.lock,
                            held_line: g.line,
                            acquired: site.lock,
                            file: ctx.rel.to_string(),
                            line: ctx.line(i),
                        });
                    }
                    if site.binds {
                        let (name, d, line) = match pending_let.take() {
                            Some((name, d)) => (Some(name), d, ctx.line(i)),
                            None => (None, depth, ctx.line(i)),
                        };
                        live.push(Guard {
                            name,
                            lock: site.lock,
                            depth: d,
                            line,
                        });
                    }
                }
                None if t == "lock" => {
                    out.unknown
                        .push((ctx.line(i), recv.unwrap_or("<expr>").to_string()));
                }
                None => {}
            }
        }
    }
    out
}
