//! CLI for the in-repo invariant analyzer.
//!
//! ```text
//! scaleclass-analyze [--deny] [--allows] [--json] [ROOT]
//! ```
//!
//! Walks the workspace at `ROOT` (default: the enclosing workspace of the
//! current directory) and reports rule violations as `file:line: [rule] msg`.
//! `--deny` exits with status 2 when any violation remains unsuppressed, and
//! with status 3 when the only findings are *stale* `analyze:allow`
//! directives (well-formed allows that no longer suppress anything);
//! `--allows` additionally prints the inventory of every `analyze:allow`
//! directive in the tree. `--json` replaces the human-readable report with a
//! single JSON array of `{file, line, rule, message}` records (stale
//! directives appear under the pseudo-rule `stale-allow`) — CI turns these
//! into GitHub annotations.
#![warn(missing_docs)]

use std::path::PathBuf;
use std::process::ExitCode;

use scaleclass_analyze::{analyze_workspace, Report, RULE_STALE_ALLOW};

fn find_workspace_root(start: PathBuf) -> PathBuf {
    let mut dir = start.clone();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return dir;
            }
        }
        if !dir.pop() {
            return start;
        }
    }
}

/// Escape `s` for inclusion in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// The whole report as one JSON array: violations first, then stale
/// directives as `stale-allow` records, both already sorted.
fn print_json(report: &Report) {
    let mut records: Vec<String> = Vec::new();
    for v in &report.violations {
        records.push(format!(
            r#"{{"file":"{}","line":{},"rule":"{}","message":"{}"}}"#,
            json_escape(&v.file),
            v.line,
            json_escape(v.rule),
            json_escape(&v.msg)
        ));
    }
    for (file, a) in &report.stale {
        records.push(format!(
            r#"{{"file":"{}","line":{},"rule":"{}","message":"{}"}}"#,
            json_escape(file),
            a.line,
            RULE_STALE_ALLOW,
            json_escape(&format!(
                "stale analyze:allow({}) suppresses no violation; remove it (reason was: {})",
                a.rule, a.reason
            ))
        ));
    }
    if records.is_empty() {
        println!("[]");
    } else {
        println!("[\n  {}\n]", records.join(",\n  "));
    }
}

fn main() -> ExitCode {
    let mut deny = false;
    let mut show_allows = false;
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--deny" => deny = true,
            "--allows" | "--list-allows" => show_allows = true,
            "--json" => json = true,
            "--help" | "-h" => {
                println!("usage: scaleclass-analyze [--deny] [--allows] [--json] [ROOT]");
                return ExitCode::SUCCESS;
            }
            other => root = Some(PathBuf::from(other)),
        }
    }
    let root = root.unwrap_or_else(|| {
        find_workspace_root(std::env::current_dir().unwrap_or_else(|_| PathBuf::from(".")))
    });

    let report = match analyze_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("scaleclass-analyze: failed to read {}: {e}", root.display());
            return ExitCode::from(3);
        }
    };

    if json {
        print_json(&report);
    } else {
        for v in &report.violations {
            println!("{}:{}: [{}] {}", v.file, v.line, v.rule, v.msg);
        }
        for (file, a) in &report.stale {
            println!(
                "{}:{}: [{}] analyze:allow({}) suppresses no violation; remove it",
                file, a.line, RULE_STALE_ALLOW, a.rule
            );
        }
        if show_allows {
            println!(
                "-- analyze:allow inventory ({} directives) --",
                report.allows.len()
            );
            for (file, a) in &report.allows {
                let stale = report
                    .stale
                    .iter()
                    .any(|(f, s)| f == file && s.line == a.line);
                let mark = if stale { " [stale]" } else { "" };
                println!(
                    "{}:{}: allow({}) — {}{}",
                    file, a.line, a.rule, a.reason, mark
                );
            }
        }
        println!(
            "scaleclass-analyze: {} violation(s), {} suppressed by analyze:allow, \
             {} allow directive(s), {} stale",
            report.violations.len(),
            report.suppressed.len(),
            report.allows.len(),
            report.stale.len()
        );
    }
    if deny && !report.violations.is_empty() {
        return ExitCode::from(2);
    }
    if deny && !report.stale.is_empty() {
        return ExitCode::from(3);
    }
    ExitCode::SUCCESS
}
