//! CLI for the in-repo invariant analyzer.
//!
//! ```text
//! scaleclass-analyze [--deny] [--allows] [ROOT]
//! ```
//!
//! Walks the workspace at `ROOT` (default: the enclosing workspace of the
//! current directory) and reports rule violations as `file:line: [rule] msg`.
//! `--deny` exits with status 2 when any violation remains unsuppressed;
//! `--allows` additionally prints the inventory of every `analyze:allow`
//! directive in the tree.
#![warn(missing_docs)]

use std::path::PathBuf;
use std::process::ExitCode;

use scaleclass_analyze::analyze_workspace;

fn find_workspace_root(start: PathBuf) -> PathBuf {
    let mut dir = start.clone();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return dir;
            }
        }
        if !dir.pop() {
            return start;
        }
    }
}

fn main() -> ExitCode {
    let mut deny = false;
    let mut show_allows = false;
    let mut root: Option<PathBuf> = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--deny" => deny = true,
            "--allows" | "--list-allows" => show_allows = true,
            "--help" | "-h" => {
                println!("usage: scaleclass-analyze [--deny] [--allows] [ROOT]");
                return ExitCode::SUCCESS;
            }
            other => root = Some(PathBuf::from(other)),
        }
    }
    let root = root.unwrap_or_else(|| {
        find_workspace_root(std::env::current_dir().unwrap_or_else(|_| PathBuf::from(".")))
    });

    let report = match analyze_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("scaleclass-analyze: failed to read {}: {e}", root.display());
            return ExitCode::from(3);
        }
    };

    for v in &report.violations {
        println!("{}:{}: [{}] {}", v.file, v.line, v.rule, v.msg);
    }
    if show_allows {
        println!(
            "-- analyze:allow inventory ({} directives) --",
            report.allows.len()
        );
        for (file, a) in &report.allows {
            println!("{}:{}: allow({}) — {}", file, a.line, a.rule, a.reason);
        }
    }
    println!(
        "scaleclass-analyze: {} violation(s), {} suppressed by analyze:allow, {} allow directive(s)",
        report.violations.len(),
        report.suppressed.len(),
        report.allows.len()
    );
    if deny && !report.violations.is_empty() {
        return ExitCode::from(2);
    }
    ExitCode::SUCCESS
}
