//! `scaleclass-analyze` — the workspace's in-repo invariant analyzer.
//!
//! The middleware owns its own cost accounting (DESIGN.md §2, paper §4.1.1),
//! so nothing in the database engine will catch an access path that dodges
//! the staging layer or a counter that silently overflows. This crate is the
//! enforcement layer: a dependency-free lexer ([`lexer`]), a guard-liveness
//! pass ([`guards`]), and eight named rules ([`rules`]) that walk every Rust
//! source in the workspace and report `file:line: [rule] message`
//! diagnostics — covering I/O containment, accounting arithmetic, hot-path
//! panics, stats coverage, lock ordering, guards across blocking calls,
//! atomic memory orderings, and the env-knob surface.
//!
//! Run it as `cargo run -p scaleclass-analyze -- --deny` (CI does). See
//! DESIGN.md §9 and §14 for the rule catalogue and the `analyze:allow`
//! policy.
#![warn(missing_docs)]

pub mod guards;
pub mod lexer;
pub mod rules;

pub use lexer::{lex, AllowDirective, Lexed, Tok, TokKind};
pub use rules::{
    analyze_workspace, check_source, Report, Violation, LOCK_ORDER, RULES, RULE_ACCOUNTING_ARITH,
    RULE_ALLOW_SYNTAX, RULE_ATOMIC_ORDERING, RULE_ENV_KNOB, RULE_GUARD_BLOCKING,
    RULE_HOT_PATH_PANIC, RULE_IO_BYPASS, RULE_LOCK_ORDER, RULE_STALE_ALLOW, RULE_STATS_COVERAGE,
};
