//! `scaleclass-analyze` — the workspace's in-repo invariant analyzer.
//!
//! The middleware owns its own cost accounting (DESIGN.md §2, paper §4.1.1),
//! so nothing in the database engine will catch an access path that dodges
//! the staging layer or a counter that silently overflows. This crate is the
//! enforcement layer: a dependency-free lexer ([`lexer`]) plus four named
//! rules ([`rules`]) that walk every Rust source in the workspace and report
//! `file:line: [rule] message` diagnostics.
//!
//! Run it as `cargo run -p scaleclass-analyze -- --deny` (CI does). See
//! DESIGN.md §9 for the rule catalogue and the `analyze:allow` policy.
#![warn(missing_docs)]

pub mod lexer;
pub mod rules;

pub use lexer::{lex, AllowDirective, Lexed, Tok, TokKind};
pub use rules::{
    analyze_workspace, check_source, Report, Violation, RULES, RULE_ACCOUNTING_ARITH,
    RULE_ALLOW_SYNTAX, RULE_HOT_PATH_PANIC, RULE_IO_BYPASS, RULE_STATS_COVERAGE,
};
