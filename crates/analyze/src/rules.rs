//! The invariant rules enforced over the workspace.
//!
//! Eight named rules, each reported as `file:line: [rule] message`:
//!
//! - **io-bypass** — no direct `std::fs` / `std::net` / `File::open` outside
//!   `crates/sqldb` and `crates/core/src/staging.rs`: all I/O must go through
//!   the cost-accounted wire/staging layers.
//! - **accounting-arith** — no bare `as` casts to integer types and no
//!   unchecked `+`/`-`/`*` in the accounting modules (`scheduler.rs`,
//!   `metrics.rs`, `estimator.rs`, `config.rs`, `catalog.rs`,
//!   `sample.rs`): the seed
//!   shipped a staging-cap overflow of exactly this class. The rule also
//!   runs *function-scoped* over the block-kernel offset arithmetic in
//!   `cc.rs` (`add_block`, `block_growth_bound`) — hot-path files where
//!   only a few kernels carry accounting-sensitive index math.
//! - **hot-path-panic** — no `unwrap()`/`expect()`/`panic!`-family macros, and
//!   no slice indexing inside loop bodies, in the scan-path modules
//!   (`parallel.rs`, `cc.rs`, `executor.rs`, `session.rs`).
//! - **stats-coverage** — every field declared on the stats structs in
//!   `metrics.rs` must be written somewhere in `crates/core` non-test code and
//!   mentioned in at least one test.
//! - **lock-order** — guard-aware (see [`crate::guards`]): every lock
//!   acquisition made while another guard is live adds an edge to the
//!   cross-file lock graph over the concurrency modules (`session.rs`,
//!   `catalog.rs`, `parallel.rs`, `staging.rs`, `middleware.rs`); any edge
//!   contradicting the canonical [`LOCK_ORDER`] manifest, any re-entrant
//!   acquisition, any cycle, and any `.lock()` the [`LOCK_SITES`] manifest
//!   cannot name is a violation.
//! - **guard-across-blocking** — no guard may be live across `send(` /
//!   `recv(` / `join()` / `wait*(` / `File::` / `read_to_end(` in the
//!   concurrency modules: a slow reader must never become a stalled
//!   arbiter.
//! - **atomic-ordering** — `Ordering::Relaxed` on the Σ-invariant cells
//!   (arbiter lease cells in `session.rs`/`catalog.rs`, catalog `charge`
//!   cells in `staging.rs`) is a violation unless an inventoried
//!   `analyze:allow` says why relaxed is sound.
//! - **env-knob** — every `SCALECLASS_*` string in workspace non-test code
//!   must be wired through a `crates/core/src/config.rs` knob and
//!   mentioned in the top-level README.md, so no knob ships undocumented.
//!
//! A violation is suppressed only by `// analyze:allow(<rule>): <reason>` on
//! the same line, or standing alone on the line(s) directly above. Directives
//! must name a real rule and carry a non-empty reason; the tool inventories
//! every directive it honours, and flags *stale* directives — well-formed
//! allows that no longer suppress anything — so the inventory cannot rot.

use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::guards::{scan_guards, GuardScan, LockEdge, LockSite};
use crate::lexer::{lex, AllowDirective, Lexed, TokKind};

/// Rule name: I/O outside the staging/wire layers.
pub const RULE_IO_BYPASS: &str = "io-bypass";
/// Rule name: unchecked arithmetic / bare casts in accounting modules.
pub const RULE_ACCOUNTING_ARITH: &str = "accounting-arith";
/// Rule name: panicking constructs on the scan path.
pub const RULE_HOT_PATH_PANIC: &str = "hot-path-panic";
/// Rule name: stats fields must be written and asserted.
pub const RULE_STATS_COVERAGE: &str = "stats-coverage";
/// Rule name: lock acquisitions must respect the `LOCK_ORDER` manifest.
pub const RULE_LOCK_ORDER: &str = "lock-order";
/// Rule name: no guard live across a blocking call shape.
pub const RULE_GUARD_BLOCKING: &str = "guard-across-blocking";
/// Rule name: no `Ordering::Relaxed` on Σ-invariant atomic cells.
pub const RULE_ATOMIC_ORDERING: &str = "atomic-ordering";
/// Rule name: every `SCALECLASS_*` env knob is wired and documented.
pub const RULE_ENV_KNOB: &str = "env-knob";
/// Pseudo-rule for malformed `analyze:allow` directives (not suppressible).
pub const RULE_ALLOW_SYNTAX: &str = "allow-syntax";
/// Pseudo-rule for stale `analyze:allow` directives (not suppressible).
pub const RULE_STALE_ALLOW: &str = "stale-allow";

/// All suppressible rule names.
pub const RULES: [&str; 8] = [
    RULE_IO_BYPASS,
    RULE_ACCOUNTING_ARITH,
    RULE_HOT_PATH_PANIC,
    RULE_STATS_COVERAGE,
    RULE_LOCK_ORDER,
    RULE_GUARD_BLOCKING,
    RULE_ATOMIC_ORDERING,
    RULE_ENV_KNOB,
];

/// One reported finding.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Workspace-relative path, `/`-separated.
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// Rule that fired.
    pub rule: &'static str,
    /// Human-readable explanation.
    pub msg: String,
}

/// Result of analyzing one file or a whole workspace.
#[derive(Debug, Default)]
pub struct Report {
    /// Unsuppressed violations (sorted by file, then line).
    pub violations: Vec<Violation>,
    /// Violations silenced by a valid allow directive, with its reason.
    pub suppressed: Vec<(Violation, String)>,
    /// Every allow directive encountered, with its file.
    pub allows: Vec<(String, AllowDirective)>,
    /// Well-formed allow directives that suppressed nothing: the escape
    /// hatch outlived the violation it vetted and must be removed.
    pub stale: Vec<(String, AllowDirective)>,
}

impl Report {
    fn merge(&mut self, other: Report) {
        self.violations.extend(other.violations);
        self.suppressed.extend(other.suppressed);
        self.allows.extend(other.allows);
        self.stale.extend(other.stale);
    }

    fn sort(&mut self) {
        self.violations
            .sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
        self.suppressed
            .sort_by(|a, b| (&a.0.file, a.0.line).cmp(&(&b.0.file, b.0.line)));
        self.allows
            .sort_by(|a, b| (&a.0, a.1.line).cmp(&(&b.0, b.1.line)));
        self.stale
            .sort_by(|a, b| (&a.0, a.1.line).cmp(&(&b.0, b.1.line)));
    }
}

const INT_TYPES: [&str; 12] = [
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
];

/// Files subject to the accounting-arith rule.
const ARITH_FILES: [&str; 7] = [
    "crates/core/src/scheduler.rs",
    "crates/core/src/metrics.rs",
    "crates/core/src/estimator.rs",
    "crates/core/src/config.rs",
    "crates/core/src/catalog.rs",
    "crates/core/src/sample.rs",
    "crates/core/src/delta.rs",
];

/// Function-scoped accounting-arith extensions: `(file, fn names)`. For
/// these files the rule runs only inside the bodies of the named
/// functions — hot-path modules where the accounting-sensitive arithmetic
/// (block slot indexing, growth bounds) is confined to a few kernels and
/// whole-file coverage would drown the scan loops in directives.
const ARITH_SCOPED: [(&str, &[&str]); 1] = [(
    "crates/core/src/cc.rs",
    &["add_block", "block_growth_bound"],
)];

/// The fn-name scope accounting-arith uses for `rel`, if any.
fn arith_scope_for(rel: &str) -> Option<&'static [&'static str]> {
    ARITH_SCOPED
        .iter()
        .find(|(f, _)| *f == rel)
        .map(|(_, fns)| *fns)
}

/// Files subject to the hot-path-panic rule.
const PANIC_FILES: [&str; 4] = [
    "crates/core/src/parallel.rs",
    "crates/core/src/cc.rs",
    "crates/core/src/executor.rs",
    "crates/core/src/session.rs",
];

/// Files the guard-aware concurrency rules (lock-order,
/// guard-across-blocking) run over: every module that holds or acquires a
/// shared-state lock.
const CONCURRENCY_FILES: [&str; 5] = [
    "crates/core/src/session.rs",
    "crates/core/src/catalog.rs",
    "crates/core/src/parallel.rs",
    "crates/core/src/staging.rs",
    "crates/core/src/middleware.rs",
];

/// Canonical lock acquisition order, outermost first. An acquisition edge
/// `held → acquired` is legal only when `held` appears strictly before
/// `acquired` here.
///
/// Amendment process (DESIGN.md §14): adding a lock means (1) naming it
/// here at the position every existing nesting permits, (2) adding its
/// call shapes to [`LOCK_SITES`], and (3) citing in the PR the code paths
/// that pin its position. Reordering existing entries requires auditing
/// every edge the analyzer reports with `--json` plus a TSan run.
pub const LOCK_ORDER: [&str; 5] = [
    // BudgetArbiter.inner (session.rs): leases are (re)balanced before any
    // session touches the database or its staged artifacts.
    "arbiter.inner",
    // StagingCatalog.inner (catalog.rs): probe/publish/detach decisions
    // precede database reads; never called with scan-pool locks held.
    "catalog.inner",
    // Backend.db RwLock (session.rs): held for the duration of server
    // scans, innermost of the coordinator-side locks.
    "backend.db",
    // Shared.evictable then Shared.evicted (parallel.rs): the worker
    // eviction pool; `relieve_pressure` nests them in this order.
    "scan.evictable",
    "scan.evicted",
];

/// Lexical call shapes that acquire the locks in [`LOCK_ORDER`].
///
/// `binds: true` rows return the guard (a `let` keeps it live); `binds:
/// false` rows are helpers that lock and unlock internally — they
/// contribute graph edges when called under a live guard but never extend
/// liveness. Receiver tails disambiguate without type information; two
/// types in one file must not share an unqualified helper name.
pub(crate) const LOCK_SITES: [LockSite; 27] = [
    // -- guard-returning acquisitions -----------------------------------
    LockSite {
        method: "lock",
        recv: Some("inner"),
        file: Some("crates/core/src/session.rs"),
        lock: "arbiter.inner",
        binds: true,
    },
    // BudgetArbiter::lock(&self) helper, internal callers.
    LockSite {
        method: "lock",
        recv: Some("self"),
        file: Some("crates/core/src/session.rs"),
        lock: "arbiter.inner",
        binds: true,
    },
    LockSite {
        method: "lock",
        recv: Some("inner"),
        file: Some("crates/core/src/catalog.rs"),
        lock: "catalog.inner",
        binds: true,
    },
    // StagingCatalog::lock(&self) helper, internal callers.
    LockSite {
        method: "lock",
        recv: Some("self"),
        file: Some("crates/core/src/catalog.rs"),
        lock: "catalog.inner",
        binds: true,
    },
    LockSite {
        method: "read",
        recv: Some("db"),
        file: None,
        lock: "backend.db",
        binds: true,
    },
    LockSite {
        method: "write",
        recv: Some("db"),
        file: None,
        lock: "backend.db",
        binds: true,
    },
    LockSite {
        method: "db_read",
        recv: None,
        file: None,
        lock: "backend.db",
        binds: true,
    },
    LockSite {
        method: "db_write",
        recv: None,
        file: None,
        lock: "backend.db",
        binds: true,
    },
    // Session::db / Backend::db / Middleware::db guard passthroughs.
    LockSite {
        method: "db",
        recv: None,
        file: None,
        lock: "backend.db",
        binds: true,
    },
    LockSite {
        method: "lock",
        recv: Some("evictable"),
        file: None,
        lock: "scan.evictable",
        binds: true,
    },
    LockSite {
        method: "lock",
        recv: Some("evicted"),
        file: None,
        lock: "scan.evicted",
        binds: true,
    },
    // -- transient helpers (lock + unlock inside the call) --------------
    LockSite {
        method: "open",
        recv: Some("arbiter"),
        file: None,
        lock: "arbiter.inner",
        binds: false,
    },
    LockSite {
        method: "release",
        recv: Some("arbiter"),
        file: None,
        lock: "arbiter.inner",
        binds: false,
    },
    LockSite {
        method: "stats",
        recv: Some("arbiter"),
        file: None,
        lock: "arbiter.inner",
        binds: false,
    },
    LockSite {
        method: "live_sessions",
        recv: Some("arbiter"),
        file: None,
        lock: "arbiter.inner",
        binds: false,
    },
    LockSite {
        method: "assert_shadow_accounting",
        recv: Some("arbiter"),
        file: None,
        lock: "arbiter.inner",
        binds: false,
    },
    LockSite {
        method: "register_session",
        recv: Some("catalog"),
        file: None,
        lock: "catalog.inner",
        binds: false,
    },
    LockSite {
        method: "unregister_session",
        recv: Some("catalog"),
        file: None,
        lock: "catalog.inner",
        binds: false,
    },
    LockSite {
        method: "probe_mem",
        recv: Some("catalog"),
        file: None,
        lock: "catalog.inner",
        binds: false,
    },
    LockSite {
        method: "probe_file",
        recv: Some("catalog"),
        file: None,
        lock: "catalog.inner",
        binds: false,
    },
    LockSite {
        method: "publish_mem",
        recv: Some("catalog"),
        file: None,
        lock: "catalog.inner",
        binds: false,
    },
    LockSite {
        method: "publish_file",
        recv: Some("catalog"),
        file: None,
        lock: "catalog.inner",
        binds: false,
    },
    LockSite {
        method: "purge_stale",
        recv: Some("catalog"),
        file: None,
        lock: "catalog.inner",
        binds: false,
    },
    LockSite {
        method: "detach",
        recv: Some("catalog"),
        file: None,
        lock: "catalog.inner",
        binds: false,
    },
    LockSite {
        method: "share_of",
        recv: Some("catalog"),
        file: None,
        lock: "catalog.inner",
        binds: false,
    },
    LockSite {
        method: "stats",
        recv: Some("catalog"),
        file: None,
        lock: "catalog.inner",
        binds: false,
    },
    LockSite {
        method: "assert_shadow_accounting",
        recv: Some("catalog"),
        file: None,
        lock: "catalog.inner",
        binds: false,
    },
];

/// Files where *every* `Ordering::Relaxed` is a violation: their atomics
/// are the arbiter lease cells and catalog share cells backing the
/// Σ leases/charges ≤ budget invariants (Acquire/Release by design).
const ATOMIC_STRICT_FILES: [&str; 2] = ["crates/core/src/session.rs", "crates/core/src/catalog.rs"];

/// Field-scoped atomic-ordering extensions: `(file, receiver tails)`. In
/// these files only atomics on the named receivers are Σ-invariant cells
/// (staging's `charge` mirrors a catalog share cell); the uniquifier
/// counters and the join-synchronized scan accounting cells stay exempt.
const ATOMIC_CELL_FIELDS: [(&str, &[&str]); 1] = [("crates/core/src/staging.rs", &["charge"])];

/// The file whose string literals define the env-knob surface.
const ENV_CONFIG_FILE: &str = "crates/core/src/config.rs";

/// Stats structs whose fields the stats-coverage rule tracks.
const STATS_STRUCTS: [&str; 5] = [
    "MiddlewareStats",
    "WorkerScanStats",
    "ScanStats",
    "ArbiterStats",
    "CatalogStats",
];

/// Mutating methods that count as a "write" to a stats field.
const MUT_METHODS: [&str; 7] = [
    "push",
    "extend",
    "insert",
    "append",
    "clear",
    "resize",
    "resize_with",
];

fn is_test_path(rel: &str) -> bool {
    rel.split('/').any(|c| c == "tests" || c == "benches")
}

fn io_rule_applies(rel: &str) -> bool {
    !(rel.starts_with("crates/sqldb/")
        || rel == "crates/core/src/staging.rs"
        || rel.starts_with("crates/analyze/"))
}

// ---------------------------------------------------------------------------
// Token-stream helpers
// ---------------------------------------------------------------------------

pub(crate) struct FileCtx<'a> {
    pub(crate) rel: &'a str,
    src: &'a str,
    pub(crate) lx: &'a Lexed,
    /// Per-token: true when the token is test-only code.
    pub(crate) test: Vec<bool>,
    /// Per-token: true when the token sits inside a loop body.
    in_loop: Vec<bool>,
}

impl<'a> FileCtx<'a> {
    fn new(rel: &'a str, src: &'a str, lx: &'a Lexed) -> Self {
        let test = if is_test_path(rel) {
            vec![true; lx.toks.len()]
        } else {
            test_mask(lx, src)
        };
        let in_loop = loop_mask(lx, src);
        FileCtx {
            rel,
            src,
            lx,
            test,
            in_loop,
        }
    }

    pub(crate) fn text(&self, i: usize) -> &'a str {
        let t = &self.lx.toks[i];
        &self.src[t.start..t.end]
    }

    pub(crate) fn is_punct(&self, i: usize, c: char) -> bool {
        i < self.lx.toks.len()
            && self.lx.toks[i].kind == TokKind::Punct
            && self.text(i).starts_with(c)
    }

    pub(crate) fn is_ident(&self, i: usize, s: &str) -> bool {
        i < self.lx.toks.len() && self.lx.toks[i].kind == TokKind::Ident && self.text(i) == s
    }

    /// `toks[i], toks[i+1]` form a `::` path separator.
    pub(crate) fn path_sep(&self, i: usize) -> bool {
        self.is_punct(i, ':') && self.is_punct(i + 1, ':')
    }

    pub(crate) fn line(&self, i: usize) -> u32 {
        self.lx.toks[i].line
    }
}

/// Index of the token matching `open` at `open_idx` (which must be `open`).
fn match_bracket(ctx: &FileCtx, open_idx: usize, open: char, close: char) -> usize {
    let n = ctx.lx.toks.len();
    let mut depth = 0i64;
    for j in open_idx..n {
        if ctx.is_punct(j, open) {
            depth += 1;
        } else if ctx.is_punct(j, close) {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
    }
    n.saturating_sub(1)
}

/// Mark tokens inside `#[cfg(test)]` / `#[test]` items as test-only.
fn test_mask(lx: &Lexed, src: &str) -> Vec<bool> {
    // A light-weight ctx without recursion into masks.
    let tmp = FileCtx {
        rel: "",
        src,
        lx,
        test: Vec::new(),
        in_loop: Vec::new(),
    };
    let n = lx.toks.len();
    let mut mask = vec![false; n];
    let mut pending = false;
    let mut i = 0usize;
    while i < n {
        if tmp.is_punct(i, '#') && tmp.is_punct(i + 1, '[') {
            let close = match_bracket(&tmp, i + 1, '[', ']');
            let inner: Vec<&str> = ((i + 2)..close).map(|j| tmp.text(j)).collect();
            let cfg_test = inner.first() == Some(&"cfg") && inner.contains(&"test");
            let test_attr = inner.len() == 1 && inner[0] == "test";
            if cfg_test || test_attr {
                pending = true;
            }
            i = close + 1;
            continue;
        }
        if pending {
            let t = if lx.toks[i].kind == TokKind::Ident {
                tmp.text(i)
            } else {
                ""
            };
            match t {
                "mod" | "fn" | "impl" | "trait" => {
                    // Item with a braced body: mark through the matching `}`.
                    let mut j = i + 1;
                    while j < n && !tmp.is_punct(j, '{') && !tmp.is_punct(j, ';') {
                        j += 1;
                    }
                    if j < n && tmp.is_punct(j, '{') {
                        let close = match_bracket(&tmp, j, '{', '}');
                        for m in mask.iter_mut().take(close + 1).skip(i) {
                            *m = true;
                        }
                        pending = false;
                        // Re-scan the interior so nested items behave, marking
                        // is idempotent.
                        i = j + 1;
                        continue;
                    }
                    pending = false;
                }
                "use" | "const" | "static" | "type" => {
                    let mut j = i;
                    while j < n && !tmp.is_punct(j, ';') {
                        j += 1;
                    }
                    for m in mask.iter_mut().take(j.min(n - 1) + 1).skip(i) {
                        *m = true;
                    }
                    pending = false;
                    i = j + 1;
                    continue;
                }
                "pub" => {
                    // visibility qualifier between attr and item; keep pending.
                }
                _ => pending = false,
            }
        }
        i += 1;
    }
    mask
}

/// Mark tokens inside `for`/`while`/`loop` bodies.
fn loop_mask(lx: &Lexed, src: &str) -> Vec<bool> {
    let tmp = FileCtx {
        rel: "",
        src,
        lx,
        test: Vec::new(),
        in_loop: Vec::new(),
    };
    let n = lx.toks.len();
    let mut mask = vec![false; n];
    let mut depth = 0i64;
    let mut loop_starts: Vec<i64> = Vec::new();
    let mut pending = false;
    for (i, t) in lx.toks.iter().enumerate() {
        if t.kind == TokKind::Ident {
            let s = tmp.text(i);
            let prev_blocks_for = i > 0
                && (lx.toks[i - 1].kind == TokKind::Ident
                    || tmp.is_punct(i - 1, '>')
                    || tmp.is_punct(i - 1, ']'));
            let next_is_generics = tmp.is_punct(i + 1, '<');
            match s {
                // `impl Trait for Type` and `for<'a>` HRTBs are not loops.
                "for" if !prev_blocks_for && !next_is_generics => pending = true,
                "while" | "loop" => pending = true,
                _ => {}
            }
        } else if tmp.is_punct(i, '{') {
            depth += 1;
            if pending {
                loop_starts.push(depth);
                pending = false;
            }
        } else if tmp.is_punct(i, '}') {
            if loop_starts.last() == Some(&depth) {
                loop_starts.pop();
            }
            depth -= 1;
        }
        mask[i] = !loop_starts.is_empty();
    }
    mask
}

/// Mark tokens inside the braced bodies of the named functions (whatever
/// impl block they live in); the signature tokens stay unmarked.
fn fn_body_mask(ctx: &FileCtx, fns: &[&str]) -> Vec<bool> {
    let n = ctx.lx.toks.len();
    let mut mask = vec![false; n];
    let mut i = 0usize;
    while i < n {
        if ctx.is_ident(i, "fn")
            && i + 1 < n
            && ctx.lx.toks[i + 1].kind == TokKind::Ident
            && fns.contains(&ctx.text(i + 1))
        {
            let mut j = i + 2;
            while j < n && !ctx.is_punct(j, '{') && !ctx.is_punct(j, ';') {
                j += 1;
            }
            if j < n && ctx.is_punct(j, '{') {
                let close = match_bracket(ctx, j, '{', '}');
                for m in mask.iter_mut().take(close + 1).skip(j) {
                    *m = true;
                }
                i = j + 1;
                continue;
            }
        }
        i += 1;
    }
    mask
}

// ---------------------------------------------------------------------------
// Per-file rules
// ---------------------------------------------------------------------------

fn io_bypass(ctx: &FileCtx, out: &mut Vec<Violation>) {
    let n = ctx.lx.toks.len();
    for i in 0..n {
        if ctx.test[i] || ctx.lx.toks[i].kind != TokKind::Ident {
            continue;
        }
        let t = ctx.text(i);
        let mut hit: Option<String> = None;
        match t {
            "std" if ctx.path_sep(i + 1) => {
                let j = i + 3;
                if ctx.is_ident(j, "fs") || ctx.is_ident(j, "net") {
                    hit = Some(format!("direct `std::{}` access", ctx.text(j)));
                } else if ctx.is_punct(j, '{') {
                    // `use std::{fs, io}` grouped import.
                    let close = match_bracket(ctx, j, '{', '}');
                    for k in (j + 1)..close {
                        if ctx.is_ident(k, "fs") || ctx.is_ident(k, "net") {
                            hit = Some(format!("direct `std::{}` import", ctx.text(k)));
                            break;
                        }
                    }
                }
            }
            "File" if ctx.path_sep(i + 1) => {
                let j = i + 3;
                if ctx.is_ident(j, "open") || ctx.is_ident(j, "create") {
                    hit = Some(format!("`File::{}`", ctx.text(j)));
                }
            }
            "OpenOptions" | "TcpStream" | "TcpListener" | "UdpSocket" => {
                hit = Some(format!("`{t}`"));
            }
            _ => {}
        }
        if let Some(what) = hit {
            out.push(Violation {
                file: ctx.rel.to_string(),
                line: ctx.line(i),
                rule: RULE_IO_BYPASS,
                msg: format!(
                    "{what} bypasses the cost-accounted staging/wire layers \
                     (only crates/sqldb and crates/core/src/staging.rs may do raw I/O)"
                ),
            });
        }
    }
}

fn accounting_arith(ctx: &FileCtx, scope: Option<&[bool]>, out: &mut Vec<Violation>) {
    let n = ctx.lx.toks.len();
    for i in 0..n {
        if ctx.test[i] || scope.is_some_and(|m| !m[i]) {
            continue;
        }
        let tok = &ctx.lx.toks[i];
        if tok.kind == TokKind::Ident && ctx.text(i) == "as" {
            if i + 1 < n && ctx.lx.toks[i + 1].kind == TokKind::Ident {
                let ty = ctx.text(i + 1);
                if INT_TYPES.contains(&ty) {
                    out.push(Violation {
                        file: ctx.rel.to_string(),
                        line: ctx.line(i),
                        rule: RULE_ACCOUNTING_ARITH,
                        msg: format!(
                            "bare `as {ty}` cast in an accounting module; \
                             use `try_into`/`{ty}::from`/checked conversion"
                        ),
                    });
                }
            }
            continue;
        }
        if tok.kind != TokKind::Punct {
            continue;
        }
        let op = match ctx.text(i).chars().next() {
            Some(c @ ('+' | '-' | '*')) => c,
            _ => continue,
        };
        // `->` return-type arrow.
        if op == '-' && ctx.is_punct(i + 1, '>') {
            continue;
        }
        // Binary position: previous token must look like an operand end.
        let prev_ok = i > 0
            && (matches!(ctx.lx.toks[i - 1].kind, TokKind::Ident | TokKind::Number)
                || ctx.is_punct(i - 1, ')')
                || ctx.is_punct(i - 1, ']'));
        if !prev_ok {
            continue;
        }
        // Const-folded literal arithmetic (`64 * 1024`) is fine.
        let next = i + 1;
        if ctx.lx.toks[i - 1].kind == TokKind::Number
            && next < n
            && ctx.lx.toks[next].kind == TokKind::Number
        {
            continue;
        }
        // `impl Trait + 'a` style bounds.
        if op == '+' && next < n && ctx.lx.toks[next].kind == TokKind::Lifetime {
            continue;
        }
        let compound = ctx.is_punct(next, '=');
        let shown = if compound {
            format!("{op}=")
        } else {
            op.to_string()
        };
        out.push(Violation {
            file: ctx.rel.to_string(),
            line: ctx.line(i),
            rule: RULE_ACCOUNTING_ARITH,
            msg: format!(
                "unchecked `{shown}` in an accounting module; \
                 use `checked_*`/`saturating_*` arithmetic"
            ),
        });
    }
}

fn hot_path_panic(ctx: &FileCtx, out: &mut Vec<Violation>) {
    let n = ctx.lx.toks.len();
    for i in 0..n {
        if ctx.test[i] {
            continue;
        }
        let tok = &ctx.lx.toks[i];
        if tok.kind == TokKind::Ident {
            let t = ctx.text(i);
            let panics = match t {
                "unwrap" | "expect" => {
                    i > 0 && ctx.is_punct(i - 1, '.') && ctx.is_punct(i + 1, '(')
                }
                "panic" | "unreachable" | "todo" | "unimplemented" => ctx.is_punct(i + 1, '!'),
                _ => false,
            };
            if panics {
                let shown = if ctx.is_punct(i + 1, '!') {
                    format!("{t}!")
                } else {
                    format!(".{t}()")
                };
                out.push(Violation {
                    file: ctx.rel.to_string(),
                    line: ctx.line(i),
                    rule: RULE_HOT_PATH_PANIC,
                    msg: format!(
                        "`{shown}` on the scan path; propagate `MwError` \
                         (or annotate why it cannot fire)"
                    ),
                });
            }
            continue;
        }
        // Slice/array indexing inside a loop body: `expr[...]` postfix form.
        if ctx.is_punct(i, '[') && ctx.in_loop[i] {
            let postfix = i > 0
                && (ctx.lx.toks[i - 1].kind == TokKind::Ident
                    || ctx.is_punct(i - 1, ')')
                    || ctx.is_punct(i - 1, ']'));
            if postfix {
                out.push(Violation {
                    file: ctx.rel.to_string(),
                    line: ctx.line(i),
                    rule: RULE_HOT_PATH_PANIC,
                    msg: "slice index inside a scan loop can panic; \
                          use iterators/`get` (or annotate why it is in-bounds)"
                        .to_string(),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Concurrency rules: lock-order, guard-across-blocking, atomic-ordering
// ---------------------------------------------------------------------------

/// Run the guard pass over one concurrency file: blocking-shape and
/// unknown-lock findings go straight to `out`; acquisition edges are
/// returned for the (cross-file) lock-graph check.
fn guard_rules(ctx: &FileCtx, out: &mut Vec<Violation>) -> Vec<LockEdge> {
    let GuardScan {
        edges,
        blocking,
        unknown,
    } = scan_guards(ctx, &LOCK_SITES);
    for (line, recv) in unknown {
        out.push(Violation {
            file: ctx.rel.to_string(),
            line,
            rule: RULE_LOCK_ORDER,
            msg: format!(
                "`.lock()` on `{recv}` matches no LOCK_SITES row; name the \
                 lock in LOCK_SITES and LOCK_ORDER (crates/analyze/src/rules.rs, \
                 DESIGN.md §14) so it joins the acquisition order"
            ),
        });
    }
    for b in blocking {
        out.push(Violation {
            file: ctx.rel.to_string(),
            line: b.line,
            rule: RULE_GUARD_BLOCKING,
            msg: format!(
                "guard on `{}` (held since line {}) is live across blocking \
                 `{}`; drop the guard before blocking",
                b.guard_lock, b.guard_line, b.shape
            ),
        });
    }
    edges
}

/// Check the accumulated acquisition edges against [`LOCK_ORDER`]:
/// contradictions, re-entrant acquisitions, undeclared locks, and (should
/// the manifest ever stop being a total order) residual cycles.
fn check_lock_graph(edges: &[LockEdge], out: &mut Vec<Violation>) {
    let pos = |l: &str| LOCK_ORDER.iter().position(|&x| x == l);
    let mut flagged: BTreeSet<(&str, &str)> = BTreeSet::new();
    for e in edges {
        let msg = match (pos(e.held), pos(e.acquired)) {
            (Some(h), Some(a)) if h == a => Some(format!(
                "re-entrant acquisition of `{}` (guard held since line {}): \
                 self-deadlock on a non-reentrant lock",
                e.acquired, e.held_line
            )),
            (Some(h), Some(a)) if h > a => Some(format!(
                "acquiring `{}` while holding `{}` (guard bound line {}) \
                 contradicts LOCK_ORDER, which puts `{}` before `{}`",
                e.acquired, e.held, e.held_line, e.acquired, e.held
            )),
            (None, _) => Some(format!(
                "lock `{}` is acquired but missing from the LOCK_ORDER manifest",
                e.held
            )),
            (_, None) => Some(format!(
                "lock `{}` is acquired but missing from the LOCK_ORDER manifest",
                e.acquired
            )),
            _ => None,
        };
        if let Some(msg) = msg {
            flagged.insert((e.held, e.acquired));
            out.push(Violation {
                file: e.file.clone(),
                line: e.line,
                rule: RULE_LOCK_ORDER,
                msg,
            });
        }
    }
    // Cycle sweep over the remaining (order-respecting) edges. With
    // LOCK_ORDER a total order this finds nothing new — every cycle
    // contains a contradicting or re-entrant edge already flagged above —
    // but it keeps "fail on any cycle" true by construction rather than
    // by argument.
    let mut adj: BTreeMap<&str, Vec<&LockEdge>> = BTreeMap::new();
    for e in edges {
        if !flagged.contains(&(e.held, e.acquired)) {
            adj.entry(e.held).or_default().push(e);
        }
    }
    // 0 = unvisited, 1 = on the current path, 2 = done.
    let mut state: BTreeMap<&str, u8> = BTreeMap::new();
    fn dfs<'e>(
        node: &'e str,
        adj: &BTreeMap<&'e str, Vec<&'e LockEdge>>,
        state: &mut BTreeMap<&'e str, u8>,
        out: &mut Vec<Violation>,
    ) {
        state.insert(node, 1);
        for e in adj.get(node).map_or(&[][..], |v| &v[..]) {
            match state.get(e.acquired).copied().unwrap_or(0) {
                1 => out.push(Violation {
                    file: e.file.clone(),
                    line: e.line,
                    rule: RULE_LOCK_ORDER,
                    msg: format!(
                        "acquiring `{}` while holding `{}` closes a cycle in \
                         the lock-acquisition graph",
                        e.acquired, e.held
                    ),
                }),
                0 => dfs(e.acquired, adj, state, out),
                _ => {}
            }
        }
        state.insert(node, 2);
    }
    let nodes: Vec<&str> = adj.keys().copied().collect();
    for node in nodes {
        if state.get(node).copied().unwrap_or(0) == 0 {
            dfs(node, &adj, &mut state, out);
        }
    }
}

/// Flag `Ordering::Relaxed` on Σ-invariant atomic cells: everywhere in
/// the strict files, and on the named receiver fields elsewhere.
fn atomic_ordering(ctx: &FileCtx, out: &mut Vec<Violation>) {
    let strict = ATOMIC_STRICT_FILES.contains(&ctx.rel);
    let cells = ATOMIC_CELL_FIELDS
        .iter()
        .find(|(f, _)| *f == ctx.rel)
        .map(|(_, c)| *c);
    if !strict && cells.is_none() {
        return;
    }
    let n = ctx.lx.toks.len();
    for i in 0..n {
        if ctx.test[i]
            || !ctx.is_ident(i, "Ordering")
            || !ctx.path_sep(i + 1)
            || !ctx.is_ident(i + 3, "Relaxed")
        {
            continue;
        }
        let hit = if strict {
            true
        } else if let Some(cells) = cells {
            // Walk back to the enclosing call's `(`, balancing any nested
            // parens, then read `recv . method (`.
            let mut j = i as i64 - 1;
            let mut bal = 0i64;
            while j >= 0 {
                if ctx.is_punct(j as usize, ')') {
                    bal += 1;
                } else if ctx.is_punct(j as usize, '(') {
                    if bal == 0 {
                        break;
                    }
                    bal -= 1;
                }
                j -= 1;
            }
            let m = j - 1; // method ident before the call-open paren
            m >= 1
                && ctx.is_punct(m as usize - 1, '.')
                && m >= 2
                && ctx.lx.toks[m as usize - 2].kind == TokKind::Ident
                && cells.contains(&ctx.text(m as usize - 2))
        } else {
            false
        };
        if hit {
            out.push(Violation {
                file: ctx.rel.to_string(),
                line: ctx.line(i),
                rule: RULE_ATOMIC_ORDERING,
                msg: "`Ordering::Relaxed` on a Σ-invariant cell (lease/share \
                      accounting); use `Acquire`/`Release`, or annotate why \
                      relaxed cannot tear the invariant"
                    .to_string(),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// env-knob (workspace-wide)
// ---------------------------------------------------------------------------

/// Accumulated evidence for the env-knob rule.
#[derive(Debug, Default)]
struct EnvScan {
    /// Knob name → first non-test usage site `(file, line)`.
    uses: BTreeMap<String, (String, u32)>,
    /// Knob names appearing in a `config.rs` string literal.
    defined: BTreeSet<String>,
}

/// Collect `SCALECLASS_*` names from a literal token's text.
fn knob_names(text: &str, out: &mut Vec<String>) {
    const NEEDLE: &str = "SCALECLASS_";
    let mut rest = text;
    while let Some(pos) = rest.find(NEEDLE) {
        let tail = &rest[pos..];
        let end = tail
            .char_indices()
            .find(|(_, c)| !(c.is_ascii_uppercase() || c.is_ascii_digit() || *c == '_'))
            .map_or(tail.len(), |(i, _)| i);
        if end > NEEDLE.len() {
            out.push(tail[..end].to_string());
        }
        rest = &tail[end..];
    }
}

fn collect_env(ctx: &FileCtx, s: &mut EnvScan) {
    let mut names = Vec::new();
    for i in 0..ctx.lx.toks.len() {
        if ctx.test[i] || ctx.lx.toks[i].kind != TokKind::Literal {
            continue;
        }
        names.clear();
        knob_names(ctx.text(i), &mut names);
        for name in names.drain(..) {
            if ctx.rel == ENV_CONFIG_FILE {
                s.defined.insert(name.clone());
            }
            s.uses
                .entry(name)
                .or_insert_with(|| (ctx.rel.to_string(), ctx.line(i)));
        }
    }
}

/// Every knob used anywhere must be parsed in `config.rs` and mentioned in
/// the top-level README. Violations anchor at the knob's first usage site.
fn env_knob(s: &EnvScan, readme: &str, out: &mut Vec<Violation>) {
    for (knob, (file, line)) in &s.uses {
        if !s.defined.contains(knob) {
            out.push(Violation {
                file: file.clone(),
                line: *line,
                rule: RULE_ENV_KNOB,
                msg: format!(
                    "env knob `{knob}` is read without a crates/core/src/config.rs \
                     knob backing it; wire it through MiddlewareConfig (or annotate \
                     why it lives outside the config surface)"
                ),
            });
        }
        if !readme.contains(knob.as_str()) {
            out.push(Violation {
                file: file.clone(),
                line: *line,
                rule: RULE_ENV_KNOB,
                msg: format!("env knob `{knob}` is not documented in README.md"),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// stats-coverage (workspace-wide)
// ---------------------------------------------------------------------------

/// Accumulated evidence for the stats-coverage rule.
#[derive(Debug, Default)]
pub struct StatsScan {
    decls: Vec<(String, String, u32)>,
    writes: BTreeSet<String>,
    test_reads: BTreeSet<String>,
    /// Workspace-relative path of metrics.rs, once seen.
    metrics_rel: Option<String>,
}

fn collect_stats(ctx: &FileCtx, s: &mut StatsScan) {
    let n = ctx.lx.toks.len();
    let in_core_src = ctx.rel.starts_with("crates/core/src/");
    if ctx.rel == "crates/core/src/metrics.rs" {
        s.metrics_rel = Some(ctx.rel.to_string());
        // Field declarations: `pub struct <S> { pub <f>: ... }`.
        let mut i = 0usize;
        while i < n {
            if ctx.is_ident(i, "struct")
                && i + 1 < n
                && ctx.lx.toks[i + 1].kind == TokKind::Ident
                && STATS_STRUCTS.contains(&ctx.text(i + 1))
                && ctx.is_punct(i + 2, '{')
                && !ctx.test[i]
            {
                let sname = ctx.text(i + 1).to_string();
                let close = match_bracket(ctx, i + 2, '{', '}');
                let mut j = i + 3;
                while j < close {
                    if ctx.is_ident(j, "pub")
                        && j + 1 < close
                        && ctx.lx.toks[j + 1].kind == TokKind::Ident
                        && ctx.is_punct(j + 2, ':')
                        && !ctx.is_punct(j + 3, ':')
                    {
                        s.decls
                            .push((sname.clone(), ctx.text(j + 1).to_string(), ctx.line(j + 1)));
                        j += 3;
                        continue;
                    }
                    j += 1;
                }
                i = close + 1;
                continue;
            }
            i += 1;
        }
    }
    for i in 0..n {
        // Writes: non-test crates/core code.
        if in_core_src && !ctx.test[i] {
            if ctx.is_punct(i, '.')
                && i + 1 < n
                && ctx.lx.toks[i + 1].kind == TokKind::Ident
                && !ctx.is_punct(i.wrapping_sub(1), '.')
            {
                let f = ctx.text(i + 1);
                let j = i + 2;
                let assign = ctx.is_punct(j, '=') && !ctx.is_punct(j + 1, '=');
                let op_assign = (ctx.is_punct(j, '+')
                    || ctx.is_punct(j, '-')
                    || ctx.is_punct(j, '*')
                    || ctx.is_punct(j, '/'))
                    && ctx.is_punct(j + 1, '=');
                let mutation = ctx.is_punct(j, '.')
                    && j + 1 < n
                    && ctx.lx.toks[j + 1].kind == TokKind::Ident
                    && MUT_METHODS.contains(&ctx.text(j + 1))
                    && ctx.is_punct(j + 2, '(');
                if assign || op_assign || mutation {
                    s.writes.insert(f.to_string());
                }
            }
            // Struct-literal initialization counts as a write to every
            // explicitly named field. The struct *declaration* has the same
            // `Name { field: ... }` shape but declares rather than writes.
            if ctx.lx.toks[i].kind == TokKind::Ident
                && STATS_STRUCTS.contains(&ctx.text(i))
                && ctx.is_punct(i + 1, '{')
                && !(i > 0 && ctx.is_ident(i - 1, "struct"))
            {
                let close = match_bracket(ctx, i + 1, '{', '}');
                let mut depth = 0i64;
                for j in (i + 1)..close {
                    if ctx.is_punct(j, '{') {
                        depth += 1;
                    } else if ctx.is_punct(j, '}') {
                        depth -= 1;
                    } else if depth == 1
                        && ctx.lx.toks[j].kind == TokKind::Ident
                        && ctx.is_punct(j + 1, ':')
                        && !ctx.is_punct(j + 2, ':')
                        && !ctx.is_punct(j.wrapping_sub(1), ':')
                    {
                        s.writes.insert(ctx.text(j).to_string());
                    }
                }
            }
        }
        // Test mentions: any `.field` access inside test code.
        if ctx.test[i]
            && ctx.is_punct(i, '.')
            && i + 1 < n
            && ctx.lx.toks[i + 1].kind == TokKind::Ident
        {
            s.test_reads.insert(ctx.text(i + 1).to_string());
        }
    }
}

/// Raw stats-coverage violations, anchored at the field declarations in
/// metrics.rs; suppression happens through that file's normal allow pass.
fn stats_coverage(s: &StatsScan) -> Vec<Violation> {
    let mut raw = Vec::new();
    let Some(rel) = &s.metrics_rel else {
        return raw;
    };
    for (sname, field, line) in &s.decls {
        if !s.writes.contains(field) {
            raw.push(Violation {
                file: rel.clone(),
                line: *line,
                rule: RULE_STATS_COVERAGE,
                msg: format!(
                    "stats field `{sname}.{field}` is declared but never \
                     written in crates/core non-test code"
                ),
            });
        }
        if !s.test_reads.contains(field) {
            raw.push(Violation {
                file: rel.clone(),
                line: *line,
                rule: RULE_STATS_COVERAGE,
                msg: format!(
                    "stats field `{sname}.{field}` is never asserted/inspected \
                     in any test"
                ),
            });
        }
    }
    raw
}

// ---------------------------------------------------------------------------
// Suppression
// ---------------------------------------------------------------------------

/// Split raw violations into (kept, suppressed-with-reason) using the file's
/// allow directives, and record which directives (by index into `allows`)
/// actually suppressed something. A directive suppresses a violation of its
/// rule on its own line, or — when it stands alone — on the next code line
/// below any run of comment-only lines.
fn apply_allows(
    raw: Vec<Violation>,
    allows: &[AllowDirective],
    comment_lines: &[u32],
) -> (Vec<Violation>, Vec<(Violation, String)>, BTreeSet<usize>) {
    let comment_set: BTreeSet<u32> = comment_lines.iter().copied().collect();
    let mut kept = Vec::new();
    let mut suppressed = Vec::new();
    let mut used: BTreeSet<usize> = BTreeSet::new();
    'next: for v in raw {
        for (ai, a) in allows.iter().enumerate() {
            if a.rule != v.rule || a.reason.is_empty() {
                continue;
            }
            if a.line == v.line {
                used.insert(ai);
                suppressed.push((v, a.reason.clone()));
                continue 'next;
            }
            if a.standalone && a.line < v.line {
                // Every line strictly between the directive and the
                // violation must be comment-only.
                let covers = ((a.line + 1)..v.line).all(|l| comment_set.contains(&l))
                    && comment_set.contains(&a.line);
                if covers {
                    used.insert(ai);
                    suppressed.push((v, a.reason.clone()));
                    continue 'next;
                }
            }
        }
        kept.push(v);
    }
    (kept, suppressed, used)
}

/// Well-formed directives that suppressed nothing. Malformed ones are
/// excluded — they already fire `allow-syntax` and fixing the syntax may
/// make them suppress again.
fn stale_allows(
    rel: &str,
    allows: &[AllowDirective],
    used: &BTreeSet<usize>,
) -> Vec<(String, AllowDirective)> {
    allows
        .iter()
        .enumerate()
        .filter(|(i, a)| {
            !used.contains(i) && RULES.contains(&a.rule.as_str()) && !a.reason.is_empty()
        })
        .map(|(_, a)| (rel.to_string(), a.clone()))
        .collect()
}

/// Complain about malformed directives (unknown rule / missing reason).
fn check_allow_syntax(rel: &str, allows: &[AllowDirective], out: &mut Vec<Violation>) {
    for a in allows {
        if !RULES.contains(&a.rule.as_str()) {
            out.push(Violation {
                file: rel.to_string(),
                line: a.line,
                rule: RULE_ALLOW_SYNTAX,
                msg: format!(
                    "analyze:allow names unknown rule `{}` (known: {})",
                    a.rule,
                    RULES.join(", ")
                ),
            });
        } else if a.reason.is_empty() {
            out.push(Violation {
                file: rel.to_string(),
                line: a.line,
                rule: RULE_ALLOW_SYNTAX,
                msg: format!(
                    "analyze:allow({}) has no reason; write \
                     `// analyze:allow({}): <why this is sound>`",
                    a.rule, a.rule
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

/// Run every per-file rule on `ctx`, pushing findings into `raw` and
/// returning the file's lock-acquisition edges for the workspace graph.
fn file_rules(ctx: &FileCtx, raw: &mut Vec<Violation>) -> Vec<LockEdge> {
    let rel = ctx.rel;
    if io_rule_applies(rel) {
        io_bypass(ctx, raw);
    }
    if ARITH_FILES.contains(&rel) {
        accounting_arith(ctx, None, raw);
    } else if let Some(fns) = arith_scope_for(rel) {
        let mask = fn_body_mask(ctx, fns);
        accounting_arith(ctx, Some(&mask), raw);
    }
    if PANIC_FILES.contains(&rel) {
        hot_path_panic(ctx, raw);
    }
    atomic_ordering(ctx, raw);
    if CONCURRENCY_FILES.contains(&rel) {
        guard_rules(ctx, raw)
    } else {
        Vec::new()
    }
}

/// Run the per-file rules on a single source text addressed as `rel`
/// (workspace-relative, `/`-separated), plus the lock-graph check over the
/// file's own acquisition edges. Used directly by fixture tests; the
/// workspace-wide rules (stats-coverage, env-knob) need `analyze_workspace`.
pub fn check_source(rel: &str, src: &str) -> Report {
    let lx = lex(src);
    let ctx = FileCtx::new(rel, src, &lx);
    let mut raw = Vec::new();
    let edges = file_rules(&ctx, &mut raw);
    check_lock_graph(&edges, &mut raw);
    let (mut kept, suppressed, used) = apply_allows(raw, &lx.allows, &lx.comment_only_lines);
    check_allow_syntax(rel, &lx.allows, &mut kept);
    let stale = stale_allows(rel, &lx.allows, &used);
    let mut report = Report {
        violations: kept,
        suppressed,
        allows: lx
            .allows
            .iter()
            .map(|a| (rel.to_string(), a.clone()))
            .collect(),
        stale,
    };
    report.sort();
    report
}

/// Directory names never descended into during the workspace walk.
const SKIP_DIRS: [&str; 5] = ["target", "vendor", ".git", "fixtures", "node_modules"];

fn walk(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name.as_ref()) && !name.starts_with('.') {
                    stack.push(path);
                }
            } else if path.extension().is_some_and(|e| e == "rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Analyze every Rust source under `root` (a workspace checkout) with every
/// rule, including the workspace-wide passes (lock graph, stats-coverage,
/// env-knob). Workspace-wide findings are routed back to their anchor file
/// so that file's own `analyze:allow` directives can suppress them.
pub fn analyze_workspace(root: &Path) -> io::Result<Report> {
    struct FileRecord {
        rel: String,
        allows: Vec<AllowDirective>,
        comment_lines: Vec<u32>,
        raw: Vec<Violation>,
    }
    let mut records: Vec<FileRecord> = Vec::new();
    let mut stats = StatsScan::default();
    let mut env = EnvScan::default();
    let mut edges: Vec<LockEdge> = Vec::new();
    for path in walk(root)? {
        let rel: String = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy().into_owned())
            .collect::<Vec<_>>()
            .join("/");
        let src = fs::read_to_string(&path)?;
        let lx = lex(&src);
        let ctx = FileCtx::new(&rel, &src, &lx);
        let mut raw = Vec::new();
        edges.extend(file_rules(&ctx, &mut raw));
        collect_stats(&ctx, &mut stats);
        collect_env(&ctx, &mut env);
        records.push(FileRecord {
            rel,
            allows: lx.allows,
            comment_lines: lx.comment_only_lines,
            raw,
        });
    }
    // Workspace-wide rules, then route each finding to its anchor file.
    let mut global = Vec::new();
    check_lock_graph(&edges, &mut global);
    global.extend(stats_coverage(&stats));
    let readme = fs::read_to_string(root.join("README.md")).unwrap_or_default();
    env_knob(&env, &readme, &mut global);
    let index: BTreeMap<String, usize> = records
        .iter()
        .enumerate()
        .map(|(i, r)| (r.rel.clone(), i))
        .collect();
    let mut report = Report::default();
    for v in global {
        match index.get(v.file.as_str()).copied() {
            Some(i) => records[i].raw.push(v),
            None => report.violations.push(v),
        }
    }
    for rec in records {
        let (mut kept, suppressed, used) = apply_allows(rec.raw, &rec.allows, &rec.comment_lines);
        check_allow_syntax(&rec.rel, &rec.allows, &mut kept);
        let stale = stale_allows(&rec.rel, &rec.allows, &used);
        report.merge(Report {
            violations: kept,
            suppressed,
            allows: rec
                .allows
                .iter()
                .map(|a| (rec.rel.clone(), a.clone()))
                .collect(),
            stale,
        });
    }
    report.sort();
    Ok(report)
}
