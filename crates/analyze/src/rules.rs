//! The invariant rules enforced over the workspace.
//!
//! Four named rules, each reported as `file:line: [rule] message`:
//!
//! - **io-bypass** — no direct `std::fs` / `std::net` / `File::open` outside
//!   `crates/sqldb` and `crates/core/src/staging.rs`: all I/O must go through
//!   the cost-accounted wire/staging layers.
//! - **accounting-arith** — no bare `as` casts to integer types and no
//!   unchecked `+`/`-`/`*` in the accounting modules (`scheduler.rs`,
//!   `metrics.rs`, `estimator.rs`, `config.rs`, `catalog.rs`,
//!   `sample.rs`): the seed
//!   shipped a staging-cap overflow of exactly this class. The rule also
//!   runs *function-scoped* over the block-kernel offset arithmetic in
//!   `cc.rs` (`add_block`, `block_growth_bound`) — hot-path files where
//!   only a few kernels carry accounting-sensitive index math.
//! - **hot-path-panic** — no `unwrap()`/`expect()`/`panic!`-family macros, and
//!   no slice indexing inside loop bodies, in the scan-path modules
//!   (`parallel.rs`, `cc.rs`, `executor.rs`, `session.rs`).
//! - **stats-coverage** — every field declared on the stats structs in
//!   `metrics.rs` must be written somewhere in `crates/core` non-test code and
//!   mentioned in at least one test.
//!
//! A violation is suppressed only by `// analyze:allow(<rule>): <reason>` on
//! the same line, or standing alone on the line(s) directly above. Directives
//! must name a real rule and carry a non-empty reason; the tool inventories
//! every directive it honours.

use std::collections::BTreeSet;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::lexer::{lex, AllowDirective, Lexed, TokKind};

/// Rule name: I/O outside the staging/wire layers.
pub const RULE_IO_BYPASS: &str = "io-bypass";
/// Rule name: unchecked arithmetic / bare casts in accounting modules.
pub const RULE_ACCOUNTING_ARITH: &str = "accounting-arith";
/// Rule name: panicking constructs on the scan path.
pub const RULE_HOT_PATH_PANIC: &str = "hot-path-panic";
/// Rule name: stats fields must be written and asserted.
pub const RULE_STATS_COVERAGE: &str = "stats-coverage";
/// Pseudo-rule for malformed `analyze:allow` directives (not suppressible).
pub const RULE_ALLOW_SYNTAX: &str = "allow-syntax";

/// All suppressible rule names.
pub const RULES: [&str; 4] = [
    RULE_IO_BYPASS,
    RULE_ACCOUNTING_ARITH,
    RULE_HOT_PATH_PANIC,
    RULE_STATS_COVERAGE,
];

/// One reported finding.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Workspace-relative path, `/`-separated.
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// Rule that fired.
    pub rule: &'static str,
    /// Human-readable explanation.
    pub msg: String,
}

/// Result of analyzing one file or a whole workspace.
#[derive(Debug, Default)]
pub struct Report {
    /// Unsuppressed violations (sorted by file, then line).
    pub violations: Vec<Violation>,
    /// Violations silenced by a valid allow directive, with its reason.
    pub suppressed: Vec<(Violation, String)>,
    /// Every allow directive encountered, with its file.
    pub allows: Vec<(String, AllowDirective)>,
}

impl Report {
    fn merge(&mut self, other: Report) {
        self.violations.extend(other.violations);
        self.suppressed.extend(other.suppressed);
        self.allows.extend(other.allows);
    }

    fn sort(&mut self) {
        self.violations
            .sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
        self.suppressed
            .sort_by(|a, b| (&a.0.file, a.0.line).cmp(&(&b.0.file, b.0.line)));
        self.allows
            .sort_by(|a, b| (&a.0, a.1.line).cmp(&(&b.0, b.1.line)));
    }
}

const INT_TYPES: [&str; 12] = [
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
];

/// Files subject to the accounting-arith rule.
const ARITH_FILES: [&str; 6] = [
    "crates/core/src/scheduler.rs",
    "crates/core/src/metrics.rs",
    "crates/core/src/estimator.rs",
    "crates/core/src/config.rs",
    "crates/core/src/catalog.rs",
    "crates/core/src/sample.rs",
];

/// Function-scoped accounting-arith extensions: `(file, fn names)`. For
/// these files the rule runs only inside the bodies of the named
/// functions — hot-path modules where the accounting-sensitive arithmetic
/// (block slot indexing, growth bounds) is confined to a few kernels and
/// whole-file coverage would drown the scan loops in directives.
const ARITH_SCOPED: [(&str, &[&str]); 1] = [(
    "crates/core/src/cc.rs",
    &["add_block", "block_growth_bound"],
)];

/// The fn-name scope accounting-arith uses for `rel`, if any.
fn arith_scope_for(rel: &str) -> Option<&'static [&'static str]> {
    ARITH_SCOPED
        .iter()
        .find(|(f, _)| *f == rel)
        .map(|(_, fns)| *fns)
}

/// Files subject to the hot-path-panic rule.
const PANIC_FILES: [&str; 4] = [
    "crates/core/src/parallel.rs",
    "crates/core/src/cc.rs",
    "crates/core/src/executor.rs",
    "crates/core/src/session.rs",
];

/// Stats structs whose fields the stats-coverage rule tracks.
const STATS_STRUCTS: [&str; 5] = [
    "MiddlewareStats",
    "WorkerScanStats",
    "ScanStats",
    "ArbiterStats",
    "CatalogStats",
];

/// Mutating methods that count as a "write" to a stats field.
const MUT_METHODS: [&str; 7] = [
    "push",
    "extend",
    "insert",
    "append",
    "clear",
    "resize",
    "resize_with",
];

fn is_test_path(rel: &str) -> bool {
    rel.split('/').any(|c| c == "tests" || c == "benches")
}

fn io_rule_applies(rel: &str) -> bool {
    !(rel.starts_with("crates/sqldb/")
        || rel == "crates/core/src/staging.rs"
        || rel.starts_with("crates/analyze/"))
}

// ---------------------------------------------------------------------------
// Token-stream helpers
// ---------------------------------------------------------------------------

struct FileCtx<'a> {
    rel: &'a str,
    src: &'a str,
    lx: &'a Lexed,
    /// Per-token: true when the token is test-only code.
    test: Vec<bool>,
    /// Per-token: true when the token sits inside a loop body.
    in_loop: Vec<bool>,
}

impl<'a> FileCtx<'a> {
    fn new(rel: &'a str, src: &'a str, lx: &'a Lexed) -> Self {
        let test = if is_test_path(rel) {
            vec![true; lx.toks.len()]
        } else {
            test_mask(lx, src)
        };
        let in_loop = loop_mask(lx, src);
        FileCtx {
            rel,
            src,
            lx,
            test,
            in_loop,
        }
    }

    fn text(&self, i: usize) -> &'a str {
        let t = &self.lx.toks[i];
        &self.src[t.start..t.end]
    }

    fn is_punct(&self, i: usize, c: char) -> bool {
        i < self.lx.toks.len()
            && self.lx.toks[i].kind == TokKind::Punct
            && self.text(i).starts_with(c)
    }

    fn is_ident(&self, i: usize, s: &str) -> bool {
        i < self.lx.toks.len() && self.lx.toks[i].kind == TokKind::Ident && self.text(i) == s
    }

    /// `toks[i], toks[i+1]` form a `::` path separator.
    fn path_sep(&self, i: usize) -> bool {
        self.is_punct(i, ':') && self.is_punct(i + 1, ':')
    }

    fn line(&self, i: usize) -> u32 {
        self.lx.toks[i].line
    }
}

/// Index of the token matching `open` at `open_idx` (which must be `open`).
fn match_bracket(ctx: &FileCtx, open_idx: usize, open: char, close: char) -> usize {
    let n = ctx.lx.toks.len();
    let mut depth = 0i64;
    for j in open_idx..n {
        if ctx.is_punct(j, open) {
            depth += 1;
        } else if ctx.is_punct(j, close) {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
    }
    n.saturating_sub(1)
}

/// Mark tokens inside `#[cfg(test)]` / `#[test]` items as test-only.
fn test_mask(lx: &Lexed, src: &str) -> Vec<bool> {
    // A light-weight ctx without recursion into masks.
    let tmp = FileCtx {
        rel: "",
        src,
        lx,
        test: Vec::new(),
        in_loop: Vec::new(),
    };
    let n = lx.toks.len();
    let mut mask = vec![false; n];
    let mut pending = false;
    let mut i = 0usize;
    while i < n {
        if tmp.is_punct(i, '#') && tmp.is_punct(i + 1, '[') {
            let close = match_bracket(&tmp, i + 1, '[', ']');
            let inner: Vec<&str> = ((i + 2)..close).map(|j| tmp.text(j)).collect();
            let cfg_test = inner.first() == Some(&"cfg") && inner.contains(&"test");
            let test_attr = inner.len() == 1 && inner[0] == "test";
            if cfg_test || test_attr {
                pending = true;
            }
            i = close + 1;
            continue;
        }
        if pending {
            let t = if lx.toks[i].kind == TokKind::Ident {
                tmp.text(i)
            } else {
                ""
            };
            match t {
                "mod" | "fn" | "impl" | "trait" => {
                    // Item with a braced body: mark through the matching `}`.
                    let mut j = i + 1;
                    while j < n && !tmp.is_punct(j, '{') && !tmp.is_punct(j, ';') {
                        j += 1;
                    }
                    if j < n && tmp.is_punct(j, '{') {
                        let close = match_bracket(&tmp, j, '{', '}');
                        for m in mask.iter_mut().take(close + 1).skip(i) {
                            *m = true;
                        }
                        pending = false;
                        // Re-scan the interior so nested items behave, marking
                        // is idempotent.
                        i = j + 1;
                        continue;
                    }
                    pending = false;
                }
                "use" | "const" | "static" | "type" => {
                    let mut j = i;
                    while j < n && !tmp.is_punct(j, ';') {
                        j += 1;
                    }
                    for m in mask.iter_mut().take(j.min(n - 1) + 1).skip(i) {
                        *m = true;
                    }
                    pending = false;
                    i = j + 1;
                    continue;
                }
                "pub" => {
                    // visibility qualifier between attr and item; keep pending.
                }
                _ => pending = false,
            }
        }
        i += 1;
    }
    mask
}

/// Mark tokens inside `for`/`while`/`loop` bodies.
fn loop_mask(lx: &Lexed, src: &str) -> Vec<bool> {
    let tmp = FileCtx {
        rel: "",
        src,
        lx,
        test: Vec::new(),
        in_loop: Vec::new(),
    };
    let n = lx.toks.len();
    let mut mask = vec![false; n];
    let mut depth = 0i64;
    let mut loop_starts: Vec<i64> = Vec::new();
    let mut pending = false;
    for (i, t) in lx.toks.iter().enumerate() {
        if t.kind == TokKind::Ident {
            let s = tmp.text(i);
            let prev_blocks_for = i > 0
                && (lx.toks[i - 1].kind == TokKind::Ident
                    || tmp.is_punct(i - 1, '>')
                    || tmp.is_punct(i - 1, ']'));
            let next_is_generics = tmp.is_punct(i + 1, '<');
            match s {
                // `impl Trait for Type` and `for<'a>` HRTBs are not loops.
                "for" if !prev_blocks_for && !next_is_generics => pending = true,
                "while" | "loop" => pending = true,
                _ => {}
            }
        } else if tmp.is_punct(i, '{') {
            depth += 1;
            if pending {
                loop_starts.push(depth);
                pending = false;
            }
        } else if tmp.is_punct(i, '}') {
            if loop_starts.last() == Some(&depth) {
                loop_starts.pop();
            }
            depth -= 1;
        }
        mask[i] = !loop_starts.is_empty();
    }
    mask
}

/// Mark tokens inside the braced bodies of the named functions (whatever
/// impl block they live in); the signature tokens stay unmarked.
fn fn_body_mask(ctx: &FileCtx, fns: &[&str]) -> Vec<bool> {
    let n = ctx.lx.toks.len();
    let mut mask = vec![false; n];
    let mut i = 0usize;
    while i < n {
        if ctx.is_ident(i, "fn")
            && i + 1 < n
            && ctx.lx.toks[i + 1].kind == TokKind::Ident
            && fns.contains(&ctx.text(i + 1))
        {
            let mut j = i + 2;
            while j < n && !ctx.is_punct(j, '{') && !ctx.is_punct(j, ';') {
                j += 1;
            }
            if j < n && ctx.is_punct(j, '{') {
                let close = match_bracket(ctx, j, '{', '}');
                for m in mask.iter_mut().take(close + 1).skip(j) {
                    *m = true;
                }
                i = j + 1;
                continue;
            }
        }
        i += 1;
    }
    mask
}

// ---------------------------------------------------------------------------
// Per-file rules
// ---------------------------------------------------------------------------

fn io_bypass(ctx: &FileCtx, out: &mut Vec<Violation>) {
    let n = ctx.lx.toks.len();
    for i in 0..n {
        if ctx.test[i] || ctx.lx.toks[i].kind != TokKind::Ident {
            continue;
        }
        let t = ctx.text(i);
        let mut hit: Option<String> = None;
        match t {
            "std" if ctx.path_sep(i + 1) => {
                let j = i + 3;
                if ctx.is_ident(j, "fs") || ctx.is_ident(j, "net") {
                    hit = Some(format!("direct `std::{}` access", ctx.text(j)));
                } else if ctx.is_punct(j, '{') {
                    // `use std::{fs, io}` grouped import.
                    let close = match_bracket(ctx, j, '{', '}');
                    for k in (j + 1)..close {
                        if ctx.is_ident(k, "fs") || ctx.is_ident(k, "net") {
                            hit = Some(format!("direct `std::{}` import", ctx.text(k)));
                            break;
                        }
                    }
                }
            }
            "File" if ctx.path_sep(i + 1) => {
                let j = i + 3;
                if ctx.is_ident(j, "open") || ctx.is_ident(j, "create") {
                    hit = Some(format!("`File::{}`", ctx.text(j)));
                }
            }
            "OpenOptions" | "TcpStream" | "TcpListener" | "UdpSocket" => {
                hit = Some(format!("`{t}`"));
            }
            _ => {}
        }
        if let Some(what) = hit {
            out.push(Violation {
                file: ctx.rel.to_string(),
                line: ctx.line(i),
                rule: RULE_IO_BYPASS,
                msg: format!(
                    "{what} bypasses the cost-accounted staging/wire layers \
                     (only crates/sqldb and crates/core/src/staging.rs may do raw I/O)"
                ),
            });
        }
    }
}

fn accounting_arith(ctx: &FileCtx, scope: Option<&[bool]>, out: &mut Vec<Violation>) {
    let n = ctx.lx.toks.len();
    for i in 0..n {
        if ctx.test[i] || scope.is_some_and(|m| !m[i]) {
            continue;
        }
        let tok = &ctx.lx.toks[i];
        if tok.kind == TokKind::Ident && ctx.text(i) == "as" {
            if i + 1 < n && ctx.lx.toks[i + 1].kind == TokKind::Ident {
                let ty = ctx.text(i + 1);
                if INT_TYPES.contains(&ty) {
                    out.push(Violation {
                        file: ctx.rel.to_string(),
                        line: ctx.line(i),
                        rule: RULE_ACCOUNTING_ARITH,
                        msg: format!(
                            "bare `as {ty}` cast in an accounting module; \
                             use `try_into`/`{ty}::from`/checked conversion"
                        ),
                    });
                }
            }
            continue;
        }
        if tok.kind != TokKind::Punct {
            continue;
        }
        let op = match ctx.text(i).chars().next() {
            Some(c @ ('+' | '-' | '*')) => c,
            _ => continue,
        };
        // `->` return-type arrow.
        if op == '-' && ctx.is_punct(i + 1, '>') {
            continue;
        }
        // Binary position: previous token must look like an operand end.
        let prev_ok = i > 0
            && (matches!(ctx.lx.toks[i - 1].kind, TokKind::Ident | TokKind::Number)
                || ctx.is_punct(i - 1, ')')
                || ctx.is_punct(i - 1, ']'));
        if !prev_ok {
            continue;
        }
        // Const-folded literal arithmetic (`64 * 1024`) is fine.
        let next = i + 1;
        if ctx.lx.toks[i - 1].kind == TokKind::Number
            && next < n
            && ctx.lx.toks[next].kind == TokKind::Number
        {
            continue;
        }
        // `impl Trait + 'a` style bounds.
        if op == '+' && next < n && ctx.lx.toks[next].kind == TokKind::Lifetime {
            continue;
        }
        let compound = ctx.is_punct(next, '=');
        let shown = if compound {
            format!("{op}=")
        } else {
            op.to_string()
        };
        out.push(Violation {
            file: ctx.rel.to_string(),
            line: ctx.line(i),
            rule: RULE_ACCOUNTING_ARITH,
            msg: format!(
                "unchecked `{shown}` in an accounting module; \
                 use `checked_*`/`saturating_*` arithmetic"
            ),
        });
    }
}

fn hot_path_panic(ctx: &FileCtx, out: &mut Vec<Violation>) {
    let n = ctx.lx.toks.len();
    for i in 0..n {
        if ctx.test[i] {
            continue;
        }
        let tok = &ctx.lx.toks[i];
        if tok.kind == TokKind::Ident {
            let t = ctx.text(i);
            let panics = match t {
                "unwrap" | "expect" => {
                    i > 0 && ctx.is_punct(i - 1, '.') && ctx.is_punct(i + 1, '(')
                }
                "panic" | "unreachable" | "todo" | "unimplemented" => ctx.is_punct(i + 1, '!'),
                _ => false,
            };
            if panics {
                let shown = if ctx.is_punct(i + 1, '!') {
                    format!("{t}!")
                } else {
                    format!(".{t}()")
                };
                out.push(Violation {
                    file: ctx.rel.to_string(),
                    line: ctx.line(i),
                    rule: RULE_HOT_PATH_PANIC,
                    msg: format!(
                        "`{shown}` on the scan path; propagate `MwError` \
                         (or annotate why it cannot fire)"
                    ),
                });
            }
            continue;
        }
        // Slice/array indexing inside a loop body: `expr[...]` postfix form.
        if ctx.is_punct(i, '[') && ctx.in_loop[i] {
            let postfix = i > 0
                && (ctx.lx.toks[i - 1].kind == TokKind::Ident
                    || ctx.is_punct(i - 1, ')')
                    || ctx.is_punct(i - 1, ']'));
            if postfix {
                out.push(Violation {
                    file: ctx.rel.to_string(),
                    line: ctx.line(i),
                    rule: RULE_HOT_PATH_PANIC,
                    msg: "slice index inside a scan loop can panic; \
                          use iterators/`get` (or annotate why it is in-bounds)"
                        .to_string(),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// stats-coverage (workspace-wide)
// ---------------------------------------------------------------------------

/// Accumulated evidence for the stats-coverage rule.
#[derive(Debug, Default)]
pub struct StatsScan {
    decls: Vec<(String, String, u32)>,
    writes: BTreeSet<String>,
    test_reads: BTreeSet<String>,
    /// Allow directives + comment-only lines of metrics.rs, for suppression.
    metrics_rel: Option<String>,
    metrics_allows: Vec<AllowDirective>,
    metrics_comment_lines: Vec<u32>,
}

fn collect_stats(ctx: &FileCtx, s: &mut StatsScan) {
    let n = ctx.lx.toks.len();
    let in_core_src = ctx.rel.starts_with("crates/core/src/");
    if ctx.rel == "crates/core/src/metrics.rs" {
        s.metrics_rel = Some(ctx.rel.to_string());
        s.metrics_allows = ctx.lx.allows.clone();
        s.metrics_comment_lines = ctx.lx.comment_only_lines.clone();
        // Field declarations: `pub struct <S> { pub <f>: ... }`.
        let mut i = 0usize;
        while i < n {
            if ctx.is_ident(i, "struct")
                && i + 1 < n
                && ctx.lx.toks[i + 1].kind == TokKind::Ident
                && STATS_STRUCTS.contains(&ctx.text(i + 1))
                && ctx.is_punct(i + 2, '{')
                && !ctx.test[i]
            {
                let sname = ctx.text(i + 1).to_string();
                let close = match_bracket(ctx, i + 2, '{', '}');
                let mut j = i + 3;
                while j < close {
                    if ctx.is_ident(j, "pub")
                        && j + 1 < close
                        && ctx.lx.toks[j + 1].kind == TokKind::Ident
                        && ctx.is_punct(j + 2, ':')
                        && !ctx.is_punct(j + 3, ':')
                    {
                        s.decls
                            .push((sname.clone(), ctx.text(j + 1).to_string(), ctx.line(j + 1)));
                        j += 3;
                        continue;
                    }
                    j += 1;
                }
                i = close + 1;
                continue;
            }
            i += 1;
        }
    }
    for i in 0..n {
        // Writes: non-test crates/core code.
        if in_core_src && !ctx.test[i] {
            if ctx.is_punct(i, '.')
                && i + 1 < n
                && ctx.lx.toks[i + 1].kind == TokKind::Ident
                && !ctx.is_punct(i.wrapping_sub(1), '.')
            {
                let f = ctx.text(i + 1);
                let j = i + 2;
                let assign = ctx.is_punct(j, '=') && !ctx.is_punct(j + 1, '=');
                let op_assign = (ctx.is_punct(j, '+')
                    || ctx.is_punct(j, '-')
                    || ctx.is_punct(j, '*')
                    || ctx.is_punct(j, '/'))
                    && ctx.is_punct(j + 1, '=');
                let mutation = ctx.is_punct(j, '.')
                    && j + 1 < n
                    && ctx.lx.toks[j + 1].kind == TokKind::Ident
                    && MUT_METHODS.contains(&ctx.text(j + 1))
                    && ctx.is_punct(j + 2, '(');
                if assign || op_assign || mutation {
                    s.writes.insert(f.to_string());
                }
            }
            // Struct-literal initialization counts as a write to every
            // explicitly named field. The struct *declaration* has the same
            // `Name { field: ... }` shape but declares rather than writes.
            if ctx.lx.toks[i].kind == TokKind::Ident
                && STATS_STRUCTS.contains(&ctx.text(i))
                && ctx.is_punct(i + 1, '{')
                && !(i > 0 && ctx.is_ident(i - 1, "struct"))
            {
                let close = match_bracket(ctx, i + 1, '{', '}');
                let mut depth = 0i64;
                for j in (i + 1)..close {
                    if ctx.is_punct(j, '{') {
                        depth += 1;
                    } else if ctx.is_punct(j, '}') {
                        depth -= 1;
                    } else if depth == 1
                        && ctx.lx.toks[j].kind == TokKind::Ident
                        && ctx.is_punct(j + 1, ':')
                        && !ctx.is_punct(j + 2, ':')
                        && !ctx.is_punct(j.wrapping_sub(1), ':')
                    {
                        s.writes.insert(ctx.text(j).to_string());
                    }
                }
            }
        }
        // Test mentions: any `.field` access inside test code.
        if ctx.test[i]
            && ctx.is_punct(i, '.')
            && i + 1 < n
            && ctx.lx.toks[i + 1].kind == TokKind::Ident
        {
            s.test_reads.insert(ctx.text(i + 1).to_string());
        }
    }
}

fn stats_coverage(s: &StatsScan, report: &mut Report) {
    let Some(rel) = &s.metrics_rel else { return };
    let mut raw = Vec::new();
    for (sname, field, line) in &s.decls {
        if !s.writes.contains(field) {
            raw.push(Violation {
                file: rel.clone(),
                line: *line,
                rule: RULE_STATS_COVERAGE,
                msg: format!(
                    "stats field `{sname}.{field}` is declared but never \
                     written in crates/core non-test code"
                ),
            });
        }
        if !s.test_reads.contains(field) {
            raw.push(Violation {
                file: rel.clone(),
                line: *line,
                rule: RULE_STATS_COVERAGE,
                msg: format!(
                    "stats field `{sname}.{field}` is never asserted/inspected \
                     in any test"
                ),
            });
        }
    }
    let (kept, suppressed) = apply_allows(raw, &s.metrics_allows, &s.metrics_comment_lines);
    report.violations.extend(kept);
    report.suppressed.extend(suppressed);
}

// ---------------------------------------------------------------------------
// Suppression
// ---------------------------------------------------------------------------

/// Split raw violations into (kept, suppressed-with-reason) using the file's
/// allow directives. A directive suppresses a violation of its rule on its
/// own line, or — when it stands alone — on the next code line below any run
/// of comment-only lines.
fn apply_allows(
    raw: Vec<Violation>,
    allows: &[AllowDirective],
    comment_lines: &[u32],
) -> (Vec<Violation>, Vec<(Violation, String)>) {
    let comment_set: BTreeSet<u32> = comment_lines.iter().copied().collect();
    let mut kept = Vec::new();
    let mut suppressed = Vec::new();
    'next: for v in raw {
        for a in allows {
            if a.rule != v.rule || a.reason.is_empty() {
                continue;
            }
            if a.line == v.line {
                suppressed.push((v, a.reason.clone()));
                continue 'next;
            }
            if a.standalone && a.line < v.line {
                // Every line strictly between the directive and the
                // violation must be comment-only.
                let covers = ((a.line + 1)..v.line).all(|l| comment_set.contains(&l))
                    && comment_set.contains(&a.line);
                if covers {
                    suppressed.push((v, a.reason.clone()));
                    continue 'next;
                }
            }
        }
        kept.push(v);
    }
    (kept, suppressed)
}

/// Complain about malformed directives (unknown rule / missing reason).
fn check_allow_syntax(rel: &str, lx: &Lexed, out: &mut Vec<Violation>) {
    for a in &lx.allows {
        if !RULES.contains(&a.rule.as_str()) {
            out.push(Violation {
                file: rel.to_string(),
                line: a.line,
                rule: RULE_ALLOW_SYNTAX,
                msg: format!(
                    "analyze:allow names unknown rule `{}` (known: {})",
                    a.rule,
                    RULES.join(", ")
                ),
            });
        } else if a.reason.is_empty() {
            out.push(Violation {
                file: rel.to_string(),
                line: a.line,
                rule: RULE_ALLOW_SYNTAX,
                msg: format!(
                    "analyze:allow({}) has no reason; write \
                     `// analyze:allow({}): <why this is sound>`",
                    a.rule, a.rule
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

/// Run the per-file rules on a single source text addressed as `rel`
/// (workspace-relative, `/`-separated). Used directly by fixture tests.
pub fn check_source(rel: &str, src: &str) -> Report {
    let lx = lex(src);
    let ctx = FileCtx::new(rel, src, &lx);
    let mut raw = Vec::new();
    if io_rule_applies(rel) {
        io_bypass(&ctx, &mut raw);
    }
    if ARITH_FILES.contains(&rel) {
        accounting_arith(&ctx, None, &mut raw);
    } else if let Some(fns) = arith_scope_for(rel) {
        let mask = fn_body_mask(&ctx, fns);
        accounting_arith(&ctx, Some(&mask), &mut raw);
    }
    if PANIC_FILES.contains(&rel) {
        hot_path_panic(&ctx, &mut raw);
    }
    let (mut kept, suppressed) = apply_allows(raw, &lx.allows, &lx.comment_only_lines);
    check_allow_syntax(rel, &lx, &mut kept);
    let mut report = Report {
        violations: kept,
        suppressed,
        allows: lx
            .allows
            .iter()
            .map(|a| (rel.to_string(), a.clone()))
            .collect(),
    };
    report.sort();
    report
}

/// Directory names never descended into during the workspace walk.
const SKIP_DIRS: [&str; 5] = ["target", "vendor", ".git", "fixtures", "node_modules"];

fn walk(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name.as_ref()) && !name.starts_with('.') {
                    stack.push(path);
                }
            } else if path.extension().is_some_and(|e| e == "rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Analyze every Rust source under `root` (a workspace checkout) with all
/// four rules, including the workspace-wide stats-coverage pass.
pub fn analyze_workspace(root: &Path) -> io::Result<Report> {
    let mut report = Report::default();
    let mut stats = StatsScan::default();
    for path in walk(root)? {
        let rel: String = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy().into_owned())
            .collect::<Vec<_>>()
            .join("/");
        let src = fs::read_to_string(&path)?;
        let lx = lex(&src);
        let ctx = FileCtx::new(&rel, &src, &lx);
        let mut raw = Vec::new();
        if io_rule_applies(&rel) {
            io_bypass(&ctx, &mut raw);
        }
        if ARITH_FILES.contains(&rel.as_str()) {
            accounting_arith(&ctx, None, &mut raw);
        } else if let Some(fns) = arith_scope_for(&rel) {
            let mask = fn_body_mask(&ctx, fns);
            accounting_arith(&ctx, Some(&mask), &mut raw);
        }
        if PANIC_FILES.contains(&rel.as_str()) {
            hot_path_panic(&ctx, &mut raw);
        }
        collect_stats(&ctx, &mut stats);
        let (mut kept, suppressed) = apply_allows(raw, &lx.allows, &lx.comment_only_lines);
        check_allow_syntax(&rel, &lx, &mut kept);
        report.merge(Report {
            violations: kept,
            suppressed,
            allows: lx.allows.iter().map(|a| (rel.clone(), a.clone())).collect(),
        });
    }
    stats_coverage(&stats, &mut report);
    report.sort();
    Ok(report)
}
