//! Predicate expressions.
//!
//! Decision-tree node conditions are conjunctions of edge predicates of the
//! form `A = v` (a split branch) or `A <> v` ("A = other", the complement
//! branch of a binary split). The middleware's server filter (§4.3.1) is the
//! disjunction `(S_1 OR ... OR S_k)` of the path predicates of the scheduled
//! active nodes. This module gives those shapes an AST with evaluation,
//! selectivity estimation, and SQL rendering.

use crate::types::{Code, Schema};
use std::fmt;

/// A boolean predicate over a coded row.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Pred {
    /// Always true (the root node's condition).
    True,
    /// Always false.
    False,
    /// `column = value`.
    Eq {
        /// Column index.
        col: usize,
        /// Value code compared against.
        value: Code,
    },
    /// `column <> value` — the "other" branch of a binary split.
    NotEq {
        /// Column index.
        col: usize,
        /// Value code compared against.
        value: Code,
    },
    /// Conjunction of all children (empty = true).
    And(Vec<Pred>),
    /// Disjunction of all children (empty = false).
    Or(Vec<Pred>),
}

impl Pred {
    /// Conjunction that collapses trivial cases.
    pub fn and(preds: Vec<Pred>) -> Pred {
        let mut out = Vec::with_capacity(preds.len());
        for p in preds {
            match p {
                Pred::True => {}
                Pred::False => return Pred::False,
                Pred::And(children) => out.extend(children),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => Pred::True,
            1 => out.pop().expect("len checked"),
            _ => Pred::And(out),
        }
    }

    /// Disjunction that collapses trivial cases.
    pub fn or(preds: Vec<Pred>) -> Pred {
        let mut out = Vec::with_capacity(preds.len());
        for p in preds {
            match p {
                Pred::False => {}
                Pred::True => return Pred::True,
                Pred::Or(children) => out.extend(children),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => Pred::False,
            1 => out.pop().expect("len checked"),
            _ => Pred::Or(out),
        }
    }

    /// Evaluate against a row of codes.
    #[inline]
    pub fn eval(&self, row: &[Code]) -> bool {
        match self {
            Pred::True => true,
            Pred::False => false,
            Pred::Eq { col, value } => row[*col] == *value,
            Pred::NotEq { col, value } => row[*col] != *value,
            Pred::And(children) => children.iter().all(|p| p.eval(row)),
            Pred::Or(children) => children.iter().any(|p| p.eval(row)),
        }
    }

    /// Number of atomic comparisons in the expression (filter complexity;
    /// the paper's filter expressions grow with the scheduled frontier).
    pub fn atom_count(&self) -> usize {
        match self {
            Pred::True | Pred::False => 0,
            Pred::Eq { .. } | Pred::NotEq { .. } => 1,
            Pred::And(children) | Pred::Or(children) => children.iter().map(Pred::atom_count).sum(),
        }
    }

    /// Crude independence-based selectivity estimate in `[0, 1]`, using only
    /// column cardinalities (uniformity assumption). Used by tests and by
    /// the middleware's staging heuristics as a sanity bound, never for
    /// correctness.
    pub fn selectivity(&self, schema: &Schema) -> f64 {
        match self {
            Pred::True => 1.0,
            Pred::False => 0.0,
            Pred::Eq { col, .. } => 1.0 / f64::from(schema.column(*col).cardinality()),
            Pred::NotEq { col, .. } => 1.0 - 1.0 / f64::from(schema.column(*col).cardinality()),
            Pred::And(children) => children.iter().map(|p| p.selectivity(schema)).product(),
            Pred::Or(children) => {
                // Inclusion by independence: 1 - prod(1 - s_i), clamped.
                let miss: f64 = children
                    .iter()
                    .map(|p| 1.0 - p.selectivity(schema))
                    .product();
                (1.0 - miss).clamp(0.0, 1.0)
            }
        }
    }

    /// Render as a SQL text fragment using schema column names.
    pub fn to_sql(&self, schema: &Schema) -> String {
        match self {
            Pred::True => "1=1".to_string(),
            Pred::False => "1=0".to_string(),
            Pred::Eq { col, value } => {
                format!("{} = {}", schema.column(*col).name(), value)
            }
            Pred::NotEq { col, value } => {
                format!("{} <> {}", schema.column(*col).name(), value)
            }
            Pred::And(children) => {
                let parts: Vec<_> = children.iter().map(|p| p.to_sql(schema)).collect();
                format!("({})", parts.join(" AND "))
            }
            Pred::Or(children) => {
                let parts: Vec<_> = children.iter().map(|p| p.to_sql(schema)).collect();
                format!("({})", parts.join(" OR "))
            }
        }
    }

    /// True when this predicate can never be satisfied together with `other`
    /// for *structurally obvious* reasons (same column equal to two different
    /// values). Conservative: `false` means "unknown".
    pub fn obviously_disjoint(&self, other: &Pred) -> bool {
        fn eq_atoms(p: &Pred, out: &mut Vec<(usize, Code)>) {
            match p {
                Pred::Eq { col, value } => out.push((*col, *value)),
                Pred::And(children) => children.iter().for_each(|c| eq_atoms(c, out)),
                _ => {}
            }
        }
        let mut a = Vec::new();
        let mut b = Vec::new();
        eq_atoms(self, &mut a);
        eq_atoms(other, &mut b);
        a.iter()
            .any(|(ca, va)| b.iter().any(|(cb, vb)| ca == cb && va != vb))
    }
}

impl fmt::Display for Pred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Pred::True => write!(f, "TRUE"),
            Pred::False => write!(f, "FALSE"),
            Pred::Eq { col, value } => write!(f, "#{col} = {value}"),
            Pred::NotEq { col, value } => write!(f, "#{col} <> {value}"),
            Pred::And(children) => {
                write!(f, "(")?;
                for (i, c) in children.iter().enumerate() {
                    if i > 0 {
                        write!(f, " AND ")?;
                    }
                    write!(f, "{c}")?;
                }
                write!(f, ")")
            }
            Pred::Or(children) => {
                write!(f, "(")?;
                for (i, c) in children.iter().enumerate() {
                    if i > 0 {
                        write!(f, " OR ")?;
                    }
                    write!(f, "{c}")?;
                }
                write!(f, ")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::from_pairs(&[("a", 4), ("b", 2), ("class", 3)])
    }

    #[test]
    fn atoms_evaluate() {
        let row = [2, 1, 0];
        assert!(Pred::Eq { col: 0, value: 2 }.eval(&row));
        assert!(!Pred::Eq { col: 0, value: 3 }.eval(&row));
        assert!(Pred::NotEq { col: 0, value: 3 }.eval(&row));
        assert!(Pred::True.eval(&row));
        assert!(!Pred::False.eval(&row));
    }

    #[test]
    fn and_or_collapse_trivial_cases() {
        assert_eq!(Pred::and(vec![]), Pred::True);
        assert_eq!(Pred::or(vec![]), Pred::False);
        assert_eq!(
            Pred::and(vec![Pred::True, Pred::Eq { col: 1, value: 0 }]),
            Pred::Eq { col: 1, value: 0 }
        );
        assert_eq!(
            Pred::and(vec![Pred::False, Pred::Eq { col: 1, value: 0 }]),
            Pred::False
        );
        assert_eq!(
            Pred::or(vec![Pred::True, Pred::Eq { col: 1, value: 0 }]),
            Pred::True
        );
    }

    #[test]
    fn nested_and_or_flatten() {
        let p = Pred::and(vec![
            Pred::And(vec![
                Pred::Eq { col: 0, value: 1 },
                Pred::Eq { col: 1, value: 0 },
            ]),
            Pred::Eq { col: 2, value: 2 },
        ]);
        match p {
            Pred::And(children) => assert_eq!(children.len(), 3),
            other => panic!("expected flattened AND, got {other}"),
        }
    }

    #[test]
    fn compound_evaluation() {
        let p = Pred::and(vec![
            Pred::Eq { col: 0, value: 2 },
            Pred::NotEq { col: 1, value: 0 },
        ]);
        assert!(p.eval(&[2, 1, 0]));
        assert!(!p.eval(&[2, 0, 0]));
        assert!(!p.eval(&[1, 1, 0]));
        let q = Pred::or(vec![
            Pred::Eq { col: 0, value: 9 },
            Pred::Eq { col: 2, value: 0 },
        ]);
        assert!(q.eval(&[2, 1, 0]));
        assert!(!q.eval(&[2, 1, 1]));
    }

    #[test]
    fn selectivity_bounds() {
        let s = schema();
        let eq = Pred::Eq { col: 0, value: 1 };
        assert!((eq.selectivity(&s) - 0.25).abs() < 1e-12);
        let ne = Pred::NotEq { col: 0, value: 1 };
        assert!((ne.selectivity(&s) - 0.75).abs() < 1e-12);
        let conj = Pred::and(vec![eq.clone(), Pred::Eq { col: 1, value: 0 }]);
        assert!((conj.selectivity(&s) - 0.125).abs() < 1e-12);
        let disj = Pred::or(vec![eq, Pred::Eq { col: 1, value: 0 }]);
        let sel = disj.selectivity(&s);
        assert!(sel > 0.25 && sel < 0.75);
    }

    #[test]
    fn sql_rendering() {
        let s = schema();
        let p = Pred::and(vec![
            Pred::Eq { col: 0, value: 2 },
            Pred::NotEq { col: 1, value: 0 },
        ]);
        assert_eq!(p.to_sql(&s), "(a = 2 AND b <> 0)");
        assert_eq!(Pred::True.to_sql(&s), "1=1");
    }

    #[test]
    fn atom_count_counts_leaves() {
        let p = Pred::or(vec![
            Pred::and(vec![
                Pred::Eq { col: 0, value: 1 },
                Pred::Eq { col: 1, value: 1 },
            ]),
            Pred::Eq { col: 2, value: 0 },
        ]);
        assert_eq!(p.atom_count(), 3);
        assert_eq!(Pred::True.atom_count(), 0);
    }

    #[test]
    fn disjointness_detection() {
        let p = Pred::and(vec![Pred::Eq { col: 0, value: 1 }]);
        let q = Pred::and(vec![Pred::Eq { col: 0, value: 2 }]);
        let r = Pred::and(vec![Pred::Eq { col: 1, value: 1 }]);
        assert!(p.obviously_disjoint(&q));
        assert!(!p.obviously_disjoint(&r));
        // NotEq atoms are ignored (conservative).
        let s = Pred::NotEq { col: 0, value: 1 };
        assert!(!p.obviously_disjoint(&s));
    }
}
