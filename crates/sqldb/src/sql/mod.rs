//! The SQL subset: lexer, parser, AST, and executor.
//!
//! Coverage is intentionally scoped to the query shapes of the paper (§2.3)
//! plus minimal DDL/DML. See [`ast`] for the grammar and [`exec`] for
//! execution semantics (notably: every UNION arm pays its own scan, as
//! 1999-era optimizers did).

pub mod ast;
pub mod exec;
pub mod lexer;
pub mod parser;
pub mod result;

pub use ast::{BoolExpr, CmpOp, Projection, SelectArm, SelectQuery, Statement};
pub use exec::{execute, execute_script, execute_select, resolve_bool_expr, ExecOutcome};
pub use parser::parse;
pub use result::{ResultSet, SqlValue};
