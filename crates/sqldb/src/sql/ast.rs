//! Abstract syntax for the supported SQL subset.
//!
//! The grammar covers exactly what the paper's middleware and baselines
//! emit (§2.3): `SELECT`s with literal/column/`COUNT(*)` projections,
//! conjunctive/disjunctive equality predicates, `GROUP BY`, and `UNION
//! [ALL]` chains — plus enough DDL/DML (`CREATE TABLE` / `INSERT` / `DROP
//! TABLE`) to drive the engine from examples and tests.

/// One parsed SQL statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Statement {
    /// A query: one or more `UNION [ALL]` arms.
    Select(SelectQuery),
    /// `CREATE TABLE name (col CARDINALITY n, ...)` — cardinality-typed
    /// categorical columns.
    CreateTable {
        /// Table name.
        name: String,
        /// `(column name, cardinality)` pairs.
        columns: Vec<(String, u16)>,
    },
    /// `INSERT INTO name VALUES (..), (..)`.
    Insert {
        /// Target table.
        table: String,
        /// Literal rows of value codes.
        rows: Vec<Vec<u16>>,
    },
    /// `DROP TABLE name`.
    DropTable {
        /// Table to drop.
        name: String,
    },
    /// `DELETE FROM name [WHERE ...]`.
    Delete {
        /// Target table.
        table: String,
        /// Optional predicate (absent = delete everything).
        where_clause: Option<BoolExpr>,
    },
}

/// A `UNION ALL` chain of select arms. A single plain `SELECT` is a chain
/// of length one. `ORDER BY` / `LIMIT` apply to the combined result, as in
/// standard SQL.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SelectQuery {
    /// The UNION arms, in source order.
    pub arms: Vec<SelectArm>,
    /// Output ordering over *output column names* (empty = unspecified).
    pub order_by: Vec<OrderKey>,
    /// Row-count cap applied after ordering.
    pub limit: Option<u64>,
}

/// One ORDER BY key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OrderKey {
    /// Output column name to sort on.
    pub column: String,
    /// Descending order?
    pub desc: bool,
}

/// One `SELECT ... FROM ... [WHERE ...] [GROUP BY ...]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SelectArm {
    /// Output expressions, in order.
    pub projections: Vec<Projection>,
    /// The FROM table.
    pub table: String,
    /// Optional WHERE predicate.
    pub where_clause: Option<BoolExpr>,
    /// GROUP BY column names (empty = ungrouped).
    pub group_by: Vec<String>,
}

/// A projected output column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Projection {
    /// All columns (`*`). Only valid without GROUP BY.
    Wildcard,
    /// A named column, optionally aliased.
    Column {
        /// Referenced column.
        name: String,
        /// Optional `AS` alias.
        alias: Option<String>,
    },
    /// A string literal (the paper uses `'attr1' AS attr_name` markers).
    StrLit {
        /// Literal text.
        value: String,
        /// Optional `AS` alias.
        alias: Option<String>,
    },
    /// An integer literal.
    IntLit {
        /// Literal value.
        value: u64,
        /// Optional `AS` alias.
        alias: Option<String>,
    },
    /// `COUNT(*)`.
    CountStar {
        /// Optional `AS` alias.
        alias: Option<String>,
    },
}

impl Projection {
    /// The output column name this projection produces.
    pub fn output_name(&self) -> String {
        match self {
            Projection::Wildcard => "*".to_string(),
            Projection::Column { name, alias } => alias.clone().unwrap_or_else(|| name.clone()),
            Projection::StrLit { value, alias } => {
                alias.clone().unwrap_or_else(|| format!("'{value}'"))
            }
            Projection::IntLit { value, alias } => {
                alias.clone().unwrap_or_else(|| value.to_string())
            }
            Projection::CountStar { alias } => {
                alias.clone().unwrap_or_else(|| "count(*)".to_string())
            }
        }
    }
}

/// A boolean expression over columns, by name (resolved against the schema
/// at execution time).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BoolExpr {
    /// A constant (`1=1` / `1=0` in SQL text).
    Const(bool),
    /// `column op value`.
    Cmp {
        /// Column name (resolved at execution time).
        column: String,
        /// Comparison operator.
        op: CmpOp,
        /// Compared literal.
        value: u64,
    },
    /// Conjunction.
    And(Vec<BoolExpr>),
    /// Disjunction.
    Or(Vec<BoolExpr>),
    /// Negation.
    Not(Box<BoolExpr>),
}

/// Comparison operators of the subset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>`
    NotEq,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_names_prefer_aliases() {
        assert_eq!(
            Projection::Column {
                name: "a1".into(),
                alias: Some("value".into())
            }
            .output_name(),
            "value"
        );
        assert_eq!(
            Projection::Column {
                name: "a1".into(),
                alias: None
            }
            .output_name(),
            "a1"
        );
        assert_eq!(
            Projection::CountStar { alias: None }.output_name(),
            "count(*)"
        );
        assert_eq!(
            Projection::StrLit {
                value: "x".into(),
                alias: None
            }
            .output_name(),
            "'x'"
        );
    }
}
