//! SQL tokenizer for the query subset the middleware generates.

use crate::error::{DbError, DbResult};

/// A lexical token with its byte position (for error reporting).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What the token is.
    pub kind: TokenKind,
    /// Byte offset in the input.
    pub pos: usize,
}

/// Token kinds of the SQL subset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (keywords are matched case-insensitively by
    /// the parser; the original text is preserved here).
    Ident(String),
    /// Unsigned integer literal.
    Int(u64),
    /// Single-quoted string literal (quotes stripped, `''` unescaped).
    Str(String),
    /// `,`
    Comma,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `*`
    Star,
    /// `=`
    Eq,
    /// `<>` or `!=`
    NotEq,
    /// `;`
    Semicolon,
}

impl TokenKind {
    /// True if this token is the given keyword (case-insensitive).
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, TokenKind::Ident(s) if s.eq_ignore_ascii_case(kw))
    }
}

/// Tokenize SQL text.
pub fn lex(input: &str) -> DbResult<Vec<Token>> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            b' ' | b'\t' | b'\r' | b'\n' => i += 1,
            b',' => {
                tokens.push(Token {
                    kind: TokenKind::Comma,
                    pos: i,
                });
                i += 1;
            }
            b'(' => {
                tokens.push(Token {
                    kind: TokenKind::LParen,
                    pos: i,
                });
                i += 1;
            }
            b')' => {
                tokens.push(Token {
                    kind: TokenKind::RParen,
                    pos: i,
                });
                i += 1;
            }
            b'*' => {
                tokens.push(Token {
                    kind: TokenKind::Star,
                    pos: i,
                });
                i += 1;
            }
            b';' => {
                tokens.push(Token {
                    kind: TokenKind::Semicolon,
                    pos: i,
                });
                i += 1;
            }
            b'=' => {
                tokens.push(Token {
                    kind: TokenKind::Eq,
                    pos: i,
                });
                i += 1;
            }
            b'<' => {
                if bytes.get(i + 1) == Some(&b'>') {
                    tokens.push(Token {
                        kind: TokenKind::NotEq,
                        pos: i,
                    });
                    i += 2;
                } else {
                    return Err(DbError::Parse {
                        message: "expected `<>`".into(),
                        position: i,
                    });
                }
            }
            b'!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token {
                        kind: TokenKind::NotEq,
                        pos: i,
                    });
                    i += 2;
                } else {
                    return Err(DbError::Parse {
                        message: "expected `!=`".into(),
                        position: i,
                    });
                }
            }
            b'\'' => {
                let start = i;
                i += 1;
                let mut s = String::new();
                loop {
                    match bytes.get(i) {
                        Some(b'\'') => {
                            if bytes.get(i + 1) == Some(&b'\'') {
                                s.push('\'');
                                i += 2;
                            } else {
                                i += 1;
                                break;
                            }
                        }
                        Some(&b) => {
                            s.push(b as char);
                            i += 1;
                        }
                        None => {
                            return Err(DbError::Parse {
                                message: "unterminated string literal".into(),
                                position: start,
                            })
                        }
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::Str(s),
                    pos: start,
                });
            }
            b'0'..=b'9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let text = &input[start..i];
                let value = text.parse::<u64>().map_err(|_| DbError::Parse {
                    message: format!("integer literal `{text}` out of range"),
                    position: start,
                })?;
                tokens.push(Token {
                    kind: TokenKind::Int(value),
                    pos: start,
                });
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' | b'#' => {
                let start = i;
                i += 1;
                while i < bytes.len()
                    && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_' || bytes[i] == b'#')
                {
                    i += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::Ident(input[start..i].to_string()),
                    pos: start,
                });
            }
            other => {
                return Err(DbError::Parse {
                    message: format!("unexpected character `{}`", other as char),
                    position: i,
                })
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(sql: &str) -> Vec<TokenKind> {
        lex(sql).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_the_paper_cc_query_shape() {
        let toks = kinds("SELECT 'a1' AS attr_name, A1 AS value, class, count(*)");
        assert_eq!(toks[0], TokenKind::Ident("SELECT".into()));
        assert_eq!(toks[1], TokenKind::Str("a1".into()));
        assert!(toks[2].is_kw("as"));
        assert!(toks.contains(&TokenKind::Star));
    }

    #[test]
    fn operators_and_punctuation() {
        assert_eq!(
            kinds("a = 1 , b <> 2 ; (c != 3)"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Eq,
                TokenKind::Int(1),
                TokenKind::Comma,
                TokenKind::Ident("b".into()),
                TokenKind::NotEq,
                TokenKind::Int(2),
                TokenKind::Semicolon,
                TokenKind::LParen,
                TokenKind::Ident("c".into()),
                TokenKind::NotEq,
                TokenKind::Int(3),
                TokenKind::RParen,
            ]
        );
    }

    #[test]
    fn string_escapes() {
        assert_eq!(kinds("'it''s'"), vec![TokenKind::Str("it's".into())]);
    }

    #[test]
    fn errors_carry_positions() {
        match lex("a ? b") {
            Err(DbError::Parse { position, .. }) => assert_eq!(position, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
        assert!(lex("'unterminated").is_err());
        assert!(lex("a < b").is_err(), "bare `<` unsupported");
    }

    #[test]
    fn temp_table_names_lex_as_idents() {
        assert_eq!(kinds("#temp_1"), vec![TokenKind::Ident("#temp_1".into())]);
    }
}
