//! Recursive-descent parser for the SQL subset.

use super::ast::*;
use super::lexer::{lex, Token, TokenKind};
use crate::error::{DbError, DbResult};

/// Parse a single SQL statement (an optional trailing `;` is allowed).
pub fn parse(sql: &str) -> DbResult<Statement> {
    let tokens = lex(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let stmt = p.statement()?;
    p.eat_if(|k| matches!(k, TokenKind::Semicolon));
    if let Some(tok) = p.peek() {
        return Err(p.error_at(tok.pos, "trailing input after statement"));
    }
    Ok(stmt)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn error_here(&self, message: &str) -> DbError {
        let position = self.peek().map(|t| t.pos).unwrap_or(usize::MAX);
        DbError::Parse {
            message: message.to_string(),
            position,
        }
    }

    fn error_at(&self, position: usize, message: &str) -> DbError {
        DbError::Parse {
            message: message.to_string(),
            position,
        }
    }

    fn eat_if(&mut self, f: impl Fn(&TokenKind) -> bool) -> bool {
        if self.peek().is_some_and(|t| f(&t.kind)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        self.eat_if(|k| k.is_kw(kw))
    }

    fn expect_kw(&mut self, kw: &str) -> DbResult<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.error_here(&format!("expected `{kw}`")))
        }
    }

    fn expect(&mut self, kind: &TokenKind, what: &str) -> DbResult<()> {
        if self.eat_if(|k| k == kind) {
            Ok(())
        } else {
            Err(self.error_here(&format!("expected {what}")))
        }
    }

    fn ident(&mut self, what: &str) -> DbResult<String> {
        match self.next() {
            Some(Token {
                kind: TokenKind::Ident(s),
                ..
            }) => Ok(s),
            _ => {
                self.pos = self.pos.saturating_sub(1);
                Err(self.error_here(&format!("expected {what}")))
            }
        }
    }

    fn int(&mut self, what: &str) -> DbResult<u64> {
        match self.next() {
            Some(Token {
                kind: TokenKind::Int(v),
                ..
            }) => Ok(v),
            _ => {
                self.pos = self.pos.saturating_sub(1);
                Err(self.error_here(&format!("expected {what}")))
            }
        }
    }

    fn statement(&mut self) -> DbResult<Statement> {
        let tok = self.peek().ok_or_else(|| self.error_here("empty input"))?;
        match &tok.kind {
            k if k.is_kw("select") => Ok(Statement::Select(self.select_query()?)),
            k if k.is_kw("create") => self.create_table(),
            k if k.is_kw("insert") => self.insert(),
            k if k.is_kw("drop") => self.drop_table(),
            k if k.is_kw("delete") => self.delete(),
            _ => Err(self.error_here("expected SELECT, CREATE, INSERT, DELETE, or DROP")),
        }
    }

    fn select_query(&mut self) -> DbResult<SelectQuery> {
        let mut arms = vec![self.select_arm()?];
        while self.eat_kw("union") {
            // Plain UNION and UNION ALL are both accepted; the paper's CC
            // queries produce disjoint groups, so duplicate elimination is a
            // no-op and we treat both as ALL.
            self.eat_kw("all");
            arms.push(self.select_arm()?);
        }
        let mut order_by = Vec::new();
        if self.eat_kw("order") {
            self.expect_kw("by")?;
            loop {
                let column = self.ident("ordering column")?;
                let desc = if self.eat_kw("desc") {
                    true
                } else {
                    self.eat_kw("asc");
                    false
                };
                order_by.push(OrderKey { column, desc });
                if !self.eat_if(|k| matches!(k, TokenKind::Comma)) {
                    break;
                }
            }
        }
        let limit = if self.eat_kw("limit") {
            Some(self.int("limit count")?)
        } else {
            None
        };
        Ok(SelectQuery {
            arms,
            order_by,
            limit,
        })
    }

    fn select_arm(&mut self) -> DbResult<SelectArm> {
        self.expect_kw("select")?;
        let mut projections = vec![self.projection()?];
        while self.eat_if(|k| matches!(k, TokenKind::Comma)) {
            projections.push(self.projection()?);
        }
        self.expect_kw("from")?;
        let table = self.ident("table name")?;
        let where_clause = if self.eat_kw("where") {
            Some(self.bool_expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat_kw("group") {
            self.expect_kw("by")?;
            group_by.push(self.ident("grouping column")?);
            while self.eat_if(|k| matches!(k, TokenKind::Comma)) {
                group_by.push(self.ident("grouping column")?);
            }
        }
        Ok(SelectArm {
            projections,
            table,
            where_clause,
            group_by,
        })
    }

    fn alias(&mut self) -> DbResult<Option<String>> {
        if self.eat_kw("as") {
            Ok(Some(self.ident("alias")?))
        } else {
            Ok(None)
        }
    }

    fn projection(&mut self) -> DbResult<Projection> {
        let tok = self
            .peek()
            .ok_or_else(|| self.error_here("expected projection"))?
            .clone();
        match tok.kind {
            TokenKind::Star => {
                self.pos += 1;
                Ok(Projection::Wildcard)
            }
            TokenKind::Str(value) => {
                self.pos += 1;
                Ok(Projection::StrLit {
                    value,
                    alias: self.alias()?,
                })
            }
            TokenKind::Int(value) => {
                self.pos += 1;
                Ok(Projection::IntLit {
                    value,
                    alias: self.alias()?,
                })
            }
            TokenKind::Ident(name) if name.eq_ignore_ascii_case("count") => {
                self.pos += 1;
                self.expect(&TokenKind::LParen, "`(` after COUNT")?;
                self.expect(&TokenKind::Star, "`*` in COUNT(*)")?;
                self.expect(&TokenKind::RParen, "`)` after COUNT(*")?;
                Ok(Projection::CountStar {
                    alias: self.alias()?,
                })
            }
            TokenKind::Ident(name) => {
                self.pos += 1;
                Ok(Projection::Column {
                    name,
                    alias: self.alias()?,
                })
            }
            _ => Err(self.error_here("expected projection")),
        }
    }

    fn bool_expr(&mut self) -> DbResult<BoolExpr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> DbResult<BoolExpr> {
        let mut terms = vec![self.and_expr()?];
        while self.eat_kw("or") {
            terms.push(self.and_expr()?);
        }
        Ok(if terms.len() == 1 {
            terms.pop().expect("len checked")
        } else {
            BoolExpr::Or(terms)
        })
    }

    fn and_expr(&mut self) -> DbResult<BoolExpr> {
        let mut terms = vec![self.not_expr()?];
        while self.eat_kw("and") {
            terms.push(self.not_expr()?);
        }
        Ok(if terms.len() == 1 {
            terms.pop().expect("len checked")
        } else {
            BoolExpr::And(terms)
        })
    }

    fn not_expr(&mut self) -> DbResult<BoolExpr> {
        if self.eat_kw("not") {
            Ok(BoolExpr::Not(Box::new(self.not_expr()?)))
        } else {
            self.primary()
        }
    }

    fn primary(&mut self) -> DbResult<BoolExpr> {
        if self.eat_if(|k| matches!(k, TokenKind::LParen)) {
            let inner = self.bool_expr()?;
            self.expect(&TokenKind::RParen, "`)`")?;
            return Ok(inner);
        }
        // `1=1` / `1=0` constants, else `column (=|<>) int`.
        let tok = self
            .peek()
            .ok_or_else(|| self.error_here("expected comparison"))?
            .clone();
        match tok.kind {
            TokenKind::Int(lhs) => {
                self.pos += 1;
                let op = self.cmp_op()?;
                let rhs = self.int("integer")?;
                let equal = lhs == rhs;
                Ok(BoolExpr::Const(match op {
                    CmpOp::Eq => equal,
                    CmpOp::NotEq => !equal,
                }))
            }
            TokenKind::Ident(column) => {
                self.pos += 1;
                let op = self.cmp_op()?;
                let value = self.int("comparison value")?;
                Ok(BoolExpr::Cmp { column, op, value })
            }
            _ => Err(self.error_here("expected comparison")),
        }
    }

    fn cmp_op(&mut self) -> DbResult<CmpOp> {
        if self.eat_if(|k| matches!(k, TokenKind::Eq)) {
            Ok(CmpOp::Eq)
        } else if self.eat_if(|k| matches!(k, TokenKind::NotEq)) {
            Ok(CmpOp::NotEq)
        } else {
            Err(self.error_here("expected `=` or `<>`"))
        }
    }

    fn create_table(&mut self) -> DbResult<Statement> {
        self.expect_kw("create")?;
        self.expect_kw("table")?;
        let name = self.ident("table name")?;
        self.expect(&TokenKind::LParen, "`(`")?;
        let mut columns = Vec::new();
        loop {
            let col = self.ident("column name")?;
            self.expect_kw("cardinality")?;
            let card = self.int("cardinality")?;
            if card == 0 || card > u64::from(u16::MAX) {
                return Err(self.error_here("cardinality must be in 1..=65535"));
            }
            columns.push((col, card as u16));
            if !self.eat_if(|k| matches!(k, TokenKind::Comma)) {
                break;
            }
        }
        self.expect(&TokenKind::RParen, "`)`")?;
        Ok(Statement::CreateTable { name, columns })
    }

    fn insert(&mut self) -> DbResult<Statement> {
        self.expect_kw("insert")?;
        self.expect_kw("into")?;
        let table = self.ident("table name")?;
        self.expect_kw("values")?;
        let mut rows = Vec::new();
        loop {
            self.expect(&TokenKind::LParen, "`(`")?;
            let mut row = Vec::new();
            loop {
                let v = self.int("value")?;
                if v > u64::from(u16::MAX) {
                    return Err(self.error_here("value exceeds u16 range"));
                }
                row.push(v as u16);
                if !self.eat_if(|k| matches!(k, TokenKind::Comma)) {
                    break;
                }
            }
            self.expect(&TokenKind::RParen, "`)`")?;
            rows.push(row);
            if !self.eat_if(|k| matches!(k, TokenKind::Comma)) {
                break;
            }
        }
        Ok(Statement::Insert { table, rows })
    }

    fn delete(&mut self) -> DbResult<Statement> {
        self.expect_kw("delete")?;
        self.expect_kw("from")?;
        let table = self.ident("table name")?;
        let where_clause = if self.eat_kw("where") {
            Some(self.bool_expr()?)
        } else {
            None
        };
        Ok(Statement::Delete {
            table,
            where_clause,
        })
    }

    fn drop_table(&mut self) -> DbResult<Statement> {
        self.expect_kw("drop")?;
        self.expect_kw("table")?;
        let name = self.ident("table name")?;
        Ok(Statement::DropTable { name })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_cc_query() {
        let sql = "Select 'attr1' as attr_name, A1 as value, class, count(*) \
                   From Data_table Where A2 = 1 AND A3 <> 0 Group By class, A1 \
                   UNION \
                   Select 'attr2', A2, class, count(*) \
                   From Data_table Where A2 = 1 Group By class, A2";
        let stmt = parse(sql).unwrap();
        let Statement::Select(q) = stmt else {
            panic!("expected select");
        };
        assert_eq!(q.arms.len(), 2);
        let arm = &q.arms[0];
        assert_eq!(arm.table, "Data_table");
        assert_eq!(arm.group_by, vec!["class", "A1"]);
        assert_eq!(arm.projections.len(), 4);
        assert_eq!(arm.projections[0].output_name(), "attr_name");
        match &arm.where_clause {
            Some(BoolExpr::And(terms)) => assert_eq!(terms.len(), 2),
            other => panic!("expected AND, got {other:?}"),
        }
    }

    #[test]
    fn parses_plain_select_star() {
        let stmt = parse("SELECT * FROM t WHERE a = 3;").unwrap();
        let Statement::Select(q) = stmt else { panic!() };
        assert_eq!(q.arms[0].projections, vec![Projection::Wildcard]);
        assert!(q.arms[0].group_by.is_empty());
    }

    #[test]
    fn boolean_precedence_and_parens() {
        let stmt = parse("SELECT a FROM t WHERE a=1 OR a=2 AND b=0").unwrap();
        let Statement::Select(q) = stmt else { panic!() };
        // OR binds loosest: a=1 OR (a=2 AND b=0)
        match q.arms[0].where_clause.as_ref().unwrap() {
            BoolExpr::Or(terms) => {
                assert_eq!(terms.len(), 2);
                assert!(matches!(terms[1], BoolExpr::And(_)));
            }
            other => panic!("expected OR, got {other:?}"),
        }
        let stmt2 = parse("SELECT a FROM t WHERE (a=1 OR a=2) AND b=0").unwrap();
        let Statement::Select(q2) = stmt2 else {
            panic!()
        };
        assert!(matches!(
            q2.arms[0].where_clause.as_ref().unwrap(),
            BoolExpr::And(_)
        ));
    }

    #[test]
    fn not_and_consts() {
        let stmt = parse("SELECT a FROM t WHERE NOT a = 1 AND 1=1").unwrap();
        let Statement::Select(q) = stmt else { panic!() };
        match q.arms[0].where_clause.as_ref().unwrap() {
            BoolExpr::And(terms) => {
                assert!(matches!(terms[0], BoolExpr::Not(_)));
                assert_eq!(terms[1], BoolExpr::Const(true));
            }
            other => panic!("{other:?}"),
        }
        let f = parse("SELECT a FROM t WHERE 1=0").unwrap();
        let Statement::Select(qf) = f else { panic!() };
        assert_eq!(qf.arms[0].where_clause, Some(BoolExpr::Const(false)));
    }

    #[test]
    fn ddl_and_dml() {
        let stmt = parse("CREATE TABLE t (a CARDINALITY 4, class CARDINALITY 2)").unwrap();
        assert_eq!(
            stmt,
            Statement::CreateTable {
                name: "t".into(),
                columns: vec![("a".into(), 4), ("class".into(), 2)],
            }
        );
        let ins = parse("INSERT INTO t VALUES (1, 0), (3, 1)").unwrap();
        assert_eq!(
            ins,
            Statement::Insert {
                table: "t".into(),
                rows: vec![vec![1, 0], vec![3, 1]],
            }
        );
        assert_eq!(
            parse("DROP TABLE t").unwrap(),
            Statement::DropTable { name: "t".into() }
        );
    }

    #[test]
    fn error_cases() {
        assert!(parse("").is_err());
        assert!(parse("SELECT").is_err());
        assert!(parse("SELECT a FROM").is_err());
        assert!(parse("SELECT a FROM t WHERE a =").is_err());
        assert!(parse("SELECT a FROM t GROUP a").is_err());
        assert!(parse("SELECT a FROM t; extra").is_err());
        assert!(parse("CREATE TABLE t (a CARDINALITY 0)").is_err());
        assert!(parse("UPDATE t SET a = 1").is_err());
        assert!(parse("INSERT INTO t VALUES (99999)").is_err());
    }

    #[test]
    fn count_requires_star() {
        assert!(parse("SELECT count(a) FROM t").is_err());
    }
}
