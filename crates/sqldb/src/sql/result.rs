//! Query results.

use std::fmt;

/// A single output value.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum SqlValue {
    /// An integer (column codes and counts).
    Int(u64),
    /// A string (literal projections, labels).
    Str(String),
}

impl SqlValue {
    /// The integer value, if this is an `Int`.
    pub fn as_int(&self) -> Option<u64> {
        match self {
            SqlValue::Int(v) => Some(*v),
            SqlValue::Str(_) => None,
        }
    }

    /// The string value, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            SqlValue::Str(s) => Some(s),
            SqlValue::Int(_) => None,
        }
    }
}

impl fmt::Display for SqlValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlValue::Int(v) => write!(f, "{v}"),
            SqlValue::Str(s) => write!(f, "{s}"),
        }
    }
}

/// An ordered, named collection of result rows.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ResultSet {
    /// Output column names.
    pub columns: Vec<String>,
    /// Output rows, aligned with `columns`.
    pub rows: Vec<Vec<SqlValue>>,
}

impl ResultSet {
    /// An empty result with the given columns.
    pub fn new(columns: Vec<String>) -> Self {
        ResultSet {
            columns,
            rows: Vec::new(),
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Is the result empty?
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Index of an output column by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns
            .iter()
            .position(|c| c.eq_ignore_ascii_case(name))
    }

    /// Sort rows lexicographically (stable output for tests and display).
    pub fn sort(&mut self) {
        self.rows.sort_by(|a, b| {
            for (x, y) in a.iter().zip(b) {
                let ord = match (x, y) {
                    (SqlValue::Int(i), SqlValue::Int(j)) => i.cmp(j),
                    (SqlValue::Str(s), SqlValue::Str(t)) => s.cmp(t),
                    (SqlValue::Int(_), SqlValue::Str(_)) => std::cmp::Ordering::Less,
                    (SqlValue::Str(_), SqlValue::Int(_)) => std::cmp::Ordering::Greater,
                };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
    }
}

impl fmt::Display for ResultSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|row| row.iter().map(|v| v.to_string()).collect())
            .collect();
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(cell.len());
                }
            }
        }
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                write!(f, " | ")?;
            }
            write!(f, "{c:<width$}", width = widths[i])?;
        }
        writeln!(f)?;
        for (i, w) in widths.iter().enumerate() {
            if i > 0 {
                write!(f, "-+-")?;
            }
            write!(f, "{}", "-".repeat(*w))?;
        }
        writeln!(f)?;
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                if i > 0 {
                    write!(f, " | ")?;
                }
                write!(
                    f,
                    "{cell:<width$}",
                    width = widths.get(i).copied().unwrap_or(0)
                )?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rs() -> ResultSet {
        ResultSet {
            columns: vec!["attr".into(), "count".into()],
            rows: vec![
                vec![SqlValue::Str("b".into()), SqlValue::Int(2)],
                vec![SqlValue::Str("a".into()), SqlValue::Int(9)],
            ],
        }
    }

    #[test]
    fn accessors() {
        let r = rs();
        assert_eq!(r.len(), 2);
        assert_eq!(r.column_index("COUNT"), Some(1));
        assert_eq!(r.column_index("missing"), None);
        assert_eq!(r.rows[0][1].as_int(), Some(2));
        assert_eq!(r.rows[0][0].as_str(), Some("b"));
        assert_eq!(r.rows[0][0].as_int(), None);
    }

    #[test]
    fn sort_orders_rows() {
        let mut r = rs();
        r.sort();
        assert_eq!(r.rows[0][0], SqlValue::Str("a".into()));
    }

    #[test]
    fn display_renders_header_and_rows() {
        let text = rs().to_string();
        assert!(text.contains("attr"));
        assert!(text.contains('9'));
        assert!(text.lines().count() >= 4);
    }
}
