//! SQL executor.
//!
//! Deliberately faithful to the paper's premise about 1999-era optimizers
//! (§2.3): *"optimizers in most database systems are not capable of
//! exploiting the commonality"* across the UNION arms of a CC-table query.
//! Each `UNION` arm here executes as its own full sequential scan and hash
//! aggregation — which is exactly what makes the SQL-based counting
//! baseline degrade in Figure 7, and what the middleware's single-scan
//! counting beats.

use super::ast::{BoolExpr, CmpOp, Projection, SelectArm, SelectQuery, Statement};
use super::parser::parse;
use super::result::{ResultSet, SqlValue};
use crate::database::Database;
use crate::error::{DbError, DbResult};
use crate::expr::Pred;
use crate::types::{Code, Schema};
use std::collections::HashMap;
use std::sync::Arc;

/// Result of executing one statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecOutcome {
    /// A query produced rows.
    Rows(ResultSet),
    /// `CREATE TABLE` succeeded (name echoed).
    TableCreated(String),
    /// `INSERT` stored this many rows.
    RowsInserted(u64),
    /// `DROP TABLE` succeeded (name echoed).
    TableDropped(String),
    /// `DELETE` removed this many rows.
    RowsDeleted(u64),
}

impl ExecOutcome {
    /// Unwrap a row-producing outcome.
    pub fn into_rows(self) -> DbResult<ResultSet> {
        match self {
            ExecOutcome::Rows(rs) => Ok(rs),
            other => Err(DbError::Unsupported(format!(
                "statement did not produce rows: {other:?}"
            ))),
        }
    }
}

/// Parse and execute one SQL statement against the database.
pub fn execute(db: &mut Database, sql: &str) -> DbResult<ExecOutcome> {
    let stmt = parse(sql)?;
    db.stats().add_statement();
    match stmt {
        Statement::Select(query) => execute_select(db, &query).map(ExecOutcome::Rows),
        Statement::CreateTable { name, columns } => {
            let schema = Schema::new(
                columns
                    .into_iter()
                    .map(|(n, c)| crate::types::ColumnMeta::new(n, c))
                    .collect(),
            );
            db.create_table(name.clone(), schema)?;
            Ok(ExecOutcome::TableCreated(name))
        }
        Statement::Insert { table, rows } => {
            let mut n = 0;
            for row in rows {
                db.insert(&table, &row)?;
                n += 1;
            }
            Ok(ExecOutcome::RowsInserted(n))
        }
        Statement::DropTable { name } => {
            db.drop_table(&name)?;
            Ok(ExecOutcome::TableDropped(name))
        }
        Statement::Delete {
            table,
            where_clause,
        } => {
            let pred = {
                let schema = db.table(&table)?.schema();
                match &where_clause {
                    Some(expr) => resolve_bool_expr(expr, schema)?,
                    None => Pred::True,
                }
            };
            let stats = std::sync::Arc::clone(db.stats());
            let removed = db.table_mut(&table)?.delete_where(&pred, &stats);
            Ok(ExecOutcome::RowsDeleted(removed))
        }
    }
}

/// Parse and execute a `;`-separated script of statements, stopping at the
/// first error. Returns one outcome per executed statement. Semicolons
/// inside string literals are respected.
pub fn execute_script(db: &mut Database, script: &str) -> DbResult<Vec<ExecOutcome>> {
    let mut outcomes = Vec::new();
    for stmt in split_statements(script) {
        if stmt.trim().is_empty() {
            continue;
        }
        outcomes.push(execute(db, stmt)?);
    }
    Ok(outcomes)
}

/// Split on top-level semicolons (quote-aware).
fn split_statements(script: &str) -> Vec<&str> {
    let mut parts = Vec::new();
    let bytes = script.as_bytes();
    let mut start = 0;
    let mut in_quotes = false;
    for (i, &b) in bytes.iter().enumerate() {
        match b {
            b'\'' => in_quotes = !in_quotes,
            b';' if !in_quotes => {
                parts.push(&script[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    parts.push(&script[start..]);
    parts
}

/// Execute a query (read-only; `&Database` suffices).
pub fn execute_select(db: &Database, query: &SelectQuery) -> DbResult<ResultSet> {
    let mut combined: Option<ResultSet> = None;
    for (arm_idx, arm) in query.arms.iter().enumerate() {
        let arm_result = execute_arm(db, arm)?;
        match &mut combined {
            None => combined = Some(arm_result),
            Some(acc) => {
                if acc.columns.len() != arm_result.columns.len() {
                    return Err(DbError::UnionSchemaMismatch { arm: arm_idx });
                }
                acc.rows.extend(arm_result.rows);
            }
        }
    }
    let mut rs = combined.ok_or_else(|| DbError::Unsupported("query with no arms".into()))?;
    if !query.order_by.is_empty() {
        apply_order_by(&mut rs, &query.order_by)?;
    }
    if let Some(limit) = query.limit {
        rs.rows.truncate(limit as usize);
    }
    Ok(rs)
}

/// Sort the combined result by the named output columns.
fn apply_order_by(rs: &mut ResultSet, keys: &[super::ast::OrderKey]) -> DbResult<()> {
    use std::cmp::Ordering;
    let resolved: Vec<(usize, bool)> = keys
        .iter()
        .map(|k| {
            rs.column_index(&k.column)
                .map(|i| (i, k.desc))
                .ok_or_else(|| DbError::UnknownColumn(k.column.clone()))
        })
        .collect::<DbResult<Vec<_>>>()?;
    let cmp_values = |a: &SqlValue, b: &SqlValue| -> Ordering {
        match (a, b) {
            (SqlValue::Int(x), SqlValue::Int(y)) => x.cmp(y),
            (SqlValue::Str(x), SqlValue::Str(y)) => x.cmp(y),
            (SqlValue::Int(_), SqlValue::Str(_)) => Ordering::Less,
            (SqlValue::Str(_), SqlValue::Int(_)) => Ordering::Greater,
        }
    };
    rs.rows.sort_by(|a, b| {
        for &(idx, desc) in &resolved {
            let ord = cmp_values(&a[idx], &b[idx]);
            let ord = if desc { ord.reverse() } else { ord };
            if ord != Ordering::Equal {
                return ord;
            }
        }
        Ordering::Equal
    });
    Ok(())
}

/// Resolve a named boolean expression against a schema into a [`Pred`].
pub fn resolve_bool_expr(expr: &BoolExpr, schema: &Schema) -> DbResult<Pred> {
    Ok(match expr {
        BoolExpr::Const(true) => Pred::True,
        BoolExpr::Const(false) => Pred::False,
        BoolExpr::Cmp { column, op, value } => {
            let col = schema.column_index(column)?;
            if *value > u64::from(u16::MAX) {
                // A comparison against an unrepresentable value can never
                // match an equality and always matches an inequality.
                return Ok(match op {
                    CmpOp::Eq => Pred::False,
                    CmpOp::NotEq => Pred::True,
                });
            }
            let value = *value as Code;
            match op {
                CmpOp::Eq => Pred::Eq { col, value },
                CmpOp::NotEq => Pred::NotEq { col, value },
            }
        }
        BoolExpr::And(terms) => Pred::and(
            terms
                .iter()
                .map(|t| resolve_bool_expr(t, schema))
                .collect::<DbResult<Vec<_>>>()?,
        ),
        BoolExpr::Or(terms) => Pred::or(
            terms
                .iter()
                .map(|t| resolve_bool_expr(t, schema))
                .collect::<DbResult<Vec<_>>>()?,
        ),
        BoolExpr::Not(inner) => negate(resolve_bool_expr(inner, schema)?),
    })
}

/// Push negation down to atoms (our `Pred` has no NOT node).
fn negate(p: Pred) -> Pred {
    match p {
        Pred::True => Pred::False,
        Pred::False => Pred::True,
        Pred::Eq { col, value } => Pred::NotEq { col, value },
        Pred::NotEq { col, value } => Pred::Eq { col, value },
        Pred::And(children) => Pred::or(children.into_iter().map(negate).collect()),
        Pred::Or(children) => Pred::and(children.into_iter().map(negate).collect()),
    }
}

fn execute_arm(db: &Database, arm: &SelectArm) -> DbResult<ResultSet> {
    let table = db.table(&arm.table)?;
    let schema = table.schema();
    let pred = match &arm.where_clause {
        Some(expr) => resolve_bool_expr(expr, schema)?,
        None => Pred::True,
    };
    if arm.group_by.is_empty() {
        execute_plain(db, arm, pred)
    } else {
        execute_grouped(db, arm, pred)
    }
}

/// Plain SELECT (projection of matching rows, or a bare COUNT(*)).
fn execute_plain(db: &Database, arm: &SelectArm, pred: Pred) -> DbResult<ResultSet> {
    let table = db.table(&arm.table)?;
    let schema = table.schema();
    let stats = Arc::clone(db.stats());

    // Bare aggregate: SELECT COUNT(*) FROM t [WHERE ...]
    if arm.projections.len() == 1 {
        if let Projection::CountStar { .. } = &arm.projections[0] {
            let count = table.scan(&stats).filter(|(_, r)| pred.eval(r)).count() as u64;
            let mut rs = ResultSet::new(vec![arm.projections[0].output_name()]);
            rs.rows.push(vec![SqlValue::Int(count)]);
            return Ok(rs);
        }
    }

    // Column projections (wildcard expands to all columns).
    let mut cols: Vec<ProjectedCol> = Vec::new();
    let mut names: Vec<String> = Vec::new();
    for p in &arm.projections {
        match p {
            Projection::Wildcard => {
                for (i, c) in schema.columns().iter().enumerate() {
                    cols.push(ProjectedCol::Column(i));
                    names.push(c.name().to_string());
                }
            }
            Projection::Column { name, .. } => {
                cols.push(ProjectedCol::Column(schema.column_index(name)?));
                names.push(p.output_name());
            }
            Projection::StrLit { value, .. } => {
                cols.push(ProjectedCol::Str(value.clone()));
                names.push(p.output_name());
            }
            Projection::IntLit { value, .. } => {
                cols.push(ProjectedCol::Int(*value));
                names.push(p.output_name());
            }
            Projection::CountStar { .. } => {
                return Err(DbError::Unsupported(
                    "COUNT(*) mixed with plain projections requires GROUP BY".into(),
                ))
            }
        }
    }

    let mut rs = ResultSet::new(names);
    for (_, row) in table.scan(&stats) {
        if !pred.eval(row) {
            continue;
        }
        rs.rows.push(
            cols.iter()
                .map(|c| match c {
                    ProjectedCol::Column(i) => SqlValue::Int(u64::from(row[*i])),
                    ProjectedCol::Str(s) => SqlValue::Str(s.clone()),
                    ProjectedCol::Int(v) => SqlValue::Int(*v),
                })
                .collect(),
        );
    }
    Ok(rs)
}

enum ProjectedCol {
    Column(usize),
    Str(String),
    Int(u64),
}

/// GROUP BY + COUNT(*) aggregation (one hash aggregation per arm).
fn execute_grouped(db: &Database, arm: &SelectArm, pred: Pred) -> DbResult<ResultSet> {
    let table = db.table(&arm.table)?;
    let schema = table.schema();
    let stats = Arc::clone(db.stats());
    stats.add_group_by();

    let group_cols: Vec<usize> = arm
        .group_by
        .iter()
        .map(|name| schema.column_index(name))
        .collect::<DbResult<Vec<_>>>()?;

    // Validate projections: columns must be grouped; literals and COUNT(*)
    // are always fine.
    for p in &arm.projections {
        match p {
            Projection::Wildcard => return Err(DbError::Unsupported("`*` with GROUP BY".into())),
            Projection::Column { name, .. } => {
                let idx = schema.column_index(name)?;
                if !group_cols.contains(&idx) {
                    return Err(DbError::Unsupported(format!(
                        "column `{name}` must appear in GROUP BY"
                    )));
                }
            }
            _ => {}
        }
    }

    let mut groups: HashMap<Vec<Code>, u64> = HashMap::new();
    // One reusable key buffer: probe by slice (`Vec<Code>: Borrow<[Code]>`)
    // and clone only when a group is seen for the first time, so the hot
    // loop allocates once per distinct group rather than once per row.
    let mut key = Vec::with_capacity(group_cols.len());
    for (_, row) in table.scan(&stats) {
        if !pred.eval(row) {
            continue;
        }
        key.clear();
        key.extend(group_cols.iter().map(|&c| row[c]));
        if let Some(n) = groups.get_mut(key.as_slice()) {
            *n += 1;
        } else {
            groups.insert(key.clone(), 1);
        }
    }

    let names: Vec<String> = arm
        .projections
        .iter()
        .map(Projection::output_name)
        .collect();
    let mut rs = ResultSet::new(names);
    for (group_key, count) in groups {
        let row: Vec<SqlValue> = arm
            .projections
            .iter()
            .map(|p| match p {
                Projection::Column { name, .. } => {
                    let idx = schema.column_index(name).expect("validated above");
                    let pos = group_cols
                        .iter()
                        .position(|&c| c == idx)
                        .expect("validated above");
                    SqlValue::Int(u64::from(group_key[pos]))
                }
                Projection::StrLit { value, .. } => SqlValue::Str(value.clone()),
                Projection::IntLit { value, .. } => SqlValue::Int(*value),
                Projection::CountStar { .. } => SqlValue::Int(count),
                Projection::Wildcard => unreachable!("validated above"),
            })
            .collect();
        rs.rows.push(row);
    }
    rs.sort();
    Ok(rs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> Database {
        let mut db = Database::new();
        execute(
            &mut db,
            "CREATE TABLE t (a CARDINALITY 3, b CARDINALITY 2, class CARDINALITY 2)",
        )
        .unwrap();
        // rows: (a, b, class)
        for (a, b, c) in [
            (0, 0, 0),
            (0, 1, 0),
            (1, 0, 1),
            (1, 1, 1),
            (2, 0, 0),
            (2, 1, 1),
            (2, 0, 1),
        ] {
            execute(&mut db, &format!("INSERT INTO t VALUES ({a}, {b}, {c})")).unwrap();
        }
        db
    }

    #[test]
    fn select_star_where() {
        let mut d = db();
        let rs = execute(&mut d, "SELECT * FROM t WHERE a = 2")
            .unwrap()
            .into_rows()
            .unwrap();
        assert_eq!(rs.len(), 3);
        assert_eq!(rs.columns, vec!["a", "b", "class"]);
    }

    #[test]
    fn bare_count_star() {
        let mut d = db();
        let rs = execute(&mut d, "SELECT COUNT(*) FROM t WHERE class <> 0")
            .unwrap()
            .into_rows()
            .unwrap();
        assert_eq!(rs.rows[0][0], SqlValue::Int(4));
    }

    #[test]
    fn group_by_count_matches_hand_count() {
        let mut d = db();
        let rs = execute(
            &mut d,
            "SELECT a, class, COUNT(*) AS n FROM t GROUP BY a, class",
        )
        .unwrap()
        .into_rows()
        .unwrap();
        // groups: (0,0)=2 (1,1)=2 (2,0)=1 (2,1)=2
        assert_eq!(rs.len(), 4);
        let find = |a: u64, c: u64| {
            rs.rows
                .iter()
                .find(|r| r[0] == SqlValue::Int(a) && r[1] == SqlValue::Int(c))
                .map(|r| r[2].clone())
        };
        assert_eq!(find(0, 0), Some(SqlValue::Int(2)));
        assert_eq!(find(2, 1), Some(SqlValue::Int(2)));
        assert_eq!(find(1, 0), None);
    }

    #[test]
    fn paper_cc_union_query() {
        let mut d = db();
        let sql = "SELECT 'a' AS attr_name, a AS value, class, COUNT(*) \
                   FROM t WHERE b = 0 GROUP BY class, a \
                   UNION ALL \
                   SELECT 'b' AS attr_name, b AS value, class, COUNT(*) \
                   FROM t WHERE b = 0 GROUP BY class, b";
        let before = d.stats().snapshot();
        let rs = execute(&mut d, sql).unwrap().into_rows().unwrap();
        let delta = d.stats().snapshot() - before;
        assert_eq!(rs.columns, vec!["attr_name", "value", "class", "count(*)"]);
        // b=0 rows: (0,0,0),(1,0,1),(2,0,0),(2,0,1)
        // arm a: (a=0,c=0)=1 (1,1)=1 (2,0)=1 (2,1)=1 → 4 groups
        // arm b: (b=0,c=0)=2 (b=0,c=1)=2 → 2 groups
        assert_eq!(rs.len(), 6);
        assert_eq!(delta.seq_scans, 2, "each UNION arm pays its own scan");
        assert_eq!(delta.group_by_queries, 2);
    }

    #[test]
    fn union_arity_mismatch_rejected() {
        let mut d = db();
        let err = execute(&mut d, "SELECT a FROM t UNION ALL SELECT a, b FROM t");
        assert!(matches!(err, Err(DbError::UnionSchemaMismatch { arm: 1 })));
    }

    #[test]
    fn not_predicate_pushdown() {
        let mut d = db();
        let rs = execute(&mut d, "SELECT COUNT(*) FROM t WHERE NOT (a = 2 OR b = 1)")
            .unwrap()
            .into_rows()
            .unwrap();
        // NOT(a=2 OR b=1) = a<>2 AND b<>1 → rows (0,0,0),(1,0,1) → 2
        assert_eq!(rs.rows[0][0], SqlValue::Int(2));
    }

    #[test]
    fn out_of_range_literal_is_never_equal() {
        let mut d = db();
        let rs = execute(&mut d, "SELECT COUNT(*) FROM t WHERE a = 70000")
            .unwrap()
            .into_rows()
            .unwrap();
        assert_eq!(rs.rows[0][0], SqlValue::Int(0));
        let rs2 = execute(&mut d, "SELECT COUNT(*) FROM t WHERE a <> 70000")
            .unwrap()
            .into_rows()
            .unwrap();
        assert_eq!(rs2.rows[0][0], SqlValue::Int(7));
    }

    #[test]
    fn ungrouped_column_in_group_by_rejected() {
        let mut d = db();
        assert!(matches!(
            execute(&mut d, "SELECT b, COUNT(*) FROM t GROUP BY a"),
            Err(DbError::Unsupported(_))
        ));
        assert!(matches!(
            execute(&mut d, "SELECT *, COUNT(*) FROM t GROUP BY a"),
            Err(DbError::Unsupported(_))
        ));
    }

    #[test]
    fn unknown_table_and_column() {
        let mut d = db();
        assert!(matches!(
            execute(&mut d, "SELECT * FROM missing"),
            Err(DbError::UnknownTable(_))
        ));
        assert!(matches!(
            execute(&mut d, "SELECT zzz FROM t"),
            Err(DbError::UnknownColumn(_))
        ));
    }

    #[test]
    fn delete_where_removes_matches_and_compacts() {
        let mut d = db();
        let out = execute(&mut d, "DELETE FROM t WHERE a = 2").unwrap();
        assert_eq!(out, ExecOutcome::RowsDeleted(3));
        let rs = execute(&mut d, "SELECT COUNT(*) FROM t")
            .unwrap()
            .into_rows()
            .unwrap();
        assert_eq!(rs.rows[0][0], SqlValue::Int(4));
        // remaining rows all have a != 2 and scans still work
        let rs = execute(&mut d, "SELECT COUNT(*) FROM t WHERE a = 2")
            .unwrap()
            .into_rows()
            .unwrap();
        assert_eq!(rs.rows[0][0], SqlValue::Int(0));
        // unconditional delete empties the table
        let out = execute(&mut d, "DELETE FROM t").unwrap();
        assert_eq!(out, ExecOutcome::RowsDeleted(4));
        let rs = execute(&mut d, "SELECT COUNT(*) FROM t")
            .unwrap()
            .into_rows()
            .unwrap();
        assert_eq!(rs.rows[0][0], SqlValue::Int(0));
        // deleting from a missing table errors
        assert!(execute(&mut d, "DELETE FROM nope").is_err());
    }

    #[test]
    fn scripts_execute_in_order_and_stop_on_error() {
        let mut d = Database::new();
        let outcomes = execute_script(
            &mut d,
            "CREATE TABLE s (x CARDINALITY 3, c CARDINALITY 2);
             INSERT INTO s VALUES (0,0), (1,1), (2,1);
             SELECT COUNT(*) FROM s WHERE c = 1;",
        )
        .unwrap();
        assert_eq!(outcomes.len(), 3);
        match &outcomes[2] {
            ExecOutcome::Rows(rs) => assert_eq!(rs.rows[0][0], SqlValue::Int(2)),
            other => panic!("{other:?}"),
        }
        // Error mid-script: earlier statements persist, later never run.
        let err = execute_script(
            &mut d,
            "INSERT INTO s VALUES (1,0); SELECT * FROM missing; DROP TABLE s;",
        );
        assert!(err.is_err());
        assert_eq!(d.table("s").unwrap().nrows(), 4, "first insert persisted");
    }

    #[test]
    fn script_split_respects_string_literals() {
        let mut d = Database::new();
        execute_script(&mut d, "CREATE TABLE q (x CARDINALITY 2)").unwrap();
        // a literal containing a semicolon must not split the statement
        let rs = execute(&mut d, "SELECT 'a;b' AS tag, COUNT(*) FROM q GROUP BY x");
        // (no rows since table empty, but it must parse as ONE statement)
        assert!(rs.is_ok());
        let outcomes =
            execute_script(&mut d, "SELECT 'x;y' AS t FROM q; INSERT INTO q VALUES (0)").unwrap();
        assert_eq!(outcomes.len(), 2);
    }

    #[test]
    fn order_by_and_limit() {
        let mut d = db();
        let rs = execute(
            &mut d,
            "SELECT a, b FROM t WHERE a <> 1 ORDER BY a DESC, b ASC",
        )
        .unwrap()
        .into_rows()
        .unwrap();
        // rows with a≠1: (0,0),(0,1),(2,0),(2,1),(2,0) → a desc, b asc
        let pairs: Vec<(u64, u64)> = rs
            .rows
            .iter()
            .map(|r| (r[0].as_int().unwrap(), r[1].as_int().unwrap()))
            .collect();
        assert_eq!(pairs, vec![(2, 0), (2, 0), (2, 1), (0, 0), (0, 1)]);

        let rs = execute(&mut d, "SELECT a FROM t ORDER BY a LIMIT 3")
            .unwrap()
            .into_rows()
            .unwrap();
        assert_eq!(rs.len(), 3);
        assert!(rs.rows.iter().all(|r| r[0].as_int().unwrap() <= 1));

        // LIMIT larger than the result is a no-op; LIMIT 0 empties it.
        let rs = execute(&mut d, "SELECT a FROM t LIMIT 100")
            .unwrap()
            .into_rows()
            .unwrap();
        assert_eq!(rs.len(), 7);
        let rs = execute(&mut d, "SELECT a FROM t LIMIT 0")
            .unwrap()
            .into_rows()
            .unwrap();
        assert!(rs.is_empty());
    }

    #[test]
    fn order_by_applies_after_union_and_aliases() {
        let mut d = db();
        let rs = execute(
            &mut d,
            "SELECT a AS v, COUNT(*) AS n FROM t GROUP BY a \
             UNION ALL SELECT b AS v, COUNT(*) AS n FROM t GROUP BY b \
             ORDER BY n DESC LIMIT 2",
        )
        .unwrap()
        .into_rows()
        .unwrap();
        assert_eq!(rs.len(), 2);
        let n0 = rs.rows[0][1].as_int().unwrap();
        let n1 = rs.rows[1][1].as_int().unwrap();
        assert!(n0 >= n1);
        assert_eq!(n0, 4, "b=0 appears 4 times");
    }

    #[test]
    fn order_by_unknown_column_errors() {
        let mut d = db();
        assert!(matches!(
            execute(&mut d, "SELECT a FROM t ORDER BY zzz"),
            Err(DbError::UnknownColumn(_))
        ));
    }

    #[test]
    fn ddl_via_sql() {
        let mut d = Database::new();
        assert_eq!(
            execute(&mut d, "CREATE TABLE x (c CARDINALITY 2)").unwrap(),
            ExecOutcome::TableCreated("x".into())
        );
        assert_eq!(
            execute(&mut d, "INSERT INTO x VALUES (0), (1), (1)").unwrap(),
            ExecOutcome::RowsInserted(3)
        );
        assert_eq!(
            execute(&mut d, "DROP TABLE x").unwrap(),
            ExecOutcome::TableDropped("x".into())
        );
        assert!(execute(&mut d, "SELECT * FROM x").is_err());
    }
}
