//! Sequenced signed row events: the per-table mutation delta log.
//!
//! The middleware's incremental-maintenance path (DESIGN.md §15) consumes
//! table mutations as a stream of *signed row events*: an INSERT is a `+row`,
//! a DELETE is a `-row`, and an UPDATE is a `-old` followed by a `+new`.
//! Because CC tables are pure sums, replaying the stream against the counts
//! a tree was built from reproduces the counts a from-scratch scan of the
//! mutated table would produce — that identity is what the delta subsystem
//! is built on (cf. Koc & Ré, "Incrementally Maintaining Classification
//! using an RDBMS", PAPERS.md).
//!
//! Logging is **opt-in per table** ([`crate::Database::enable_delta_log`]);
//! with no log enabled the DML paths skip event capture entirely, so the
//! default configuration pays nothing.

use crate::types::Code;

/// Sign of a logged row event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaSign {
    /// The row arrived (INSERT, or the new image of an UPDATE).
    Insert,
    /// The row left (DELETE, or the old image of an UPDATE).
    Delete,
}

/// One signed row event, with its position in the table's mutation order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RowDelta {
    /// Monotone per-table sequence number; consumers must apply events in
    /// ascending `seq` order (a delete may refer to a row inserted by an
    /// earlier event in the same drain).
    pub seq: u64,
    /// Whether the row arrived or left.
    pub sign: DeltaSign,
    /// The full coded row image.
    pub row: Vec<Code>,
}

/// A sequenced log of signed row events for one table.
///
/// Draining the log ([`DeltaLog::take`]) hands the accumulated events to the
/// consumer without resetting the sequence counter, so event order remains
/// globally comparable across drains.
#[derive(Debug, Default, Clone)]
pub struct DeltaLog {
    next_seq: u64,
    events: Vec<RowDelta>,
}

impl DeltaLog {
    /// An empty log.
    pub fn new() -> Self {
        DeltaLog::default()
    }

    /// Append one signed event, stamping it with the next sequence number.
    pub fn record(&mut self, sign: DeltaSign, row: &[Code]) {
        self.events.push(RowDelta {
            seq: self.next_seq,
            sign,
            row: row.to_vec(),
        });
        self.next_seq += 1;
    }

    /// Number of undrained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Is the log drained?
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The undrained events, in sequence order.
    pub fn events(&self) -> &[RowDelta] {
        &self.events
    }

    /// Drain the accumulated events. The sequence counter keeps advancing,
    /// so events from successive drains never reuse numbers.
    pub fn take(&mut self) -> Vec<RowDelta> {
        std::mem::take(&mut self.events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_are_sequenced_in_order() {
        let mut log = DeltaLog::new();
        log.record(DeltaSign::Insert, &[1, 0]);
        log.record(DeltaSign::Delete, &[1, 0]);
        log.record(DeltaSign::Insert, &[2, 1]);
        let seqs: Vec<u64> = log.events().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2]);
        assert_eq!(log.events()[1].sign, DeltaSign::Delete);
        assert_eq!(log.events()[2].row, vec![2, 1]);
    }

    #[test]
    fn take_drains_but_keeps_sequencing() {
        let mut log = DeltaLog::new();
        log.record(DeltaSign::Insert, &[0]);
        let first = log.take();
        assert_eq!(first.len(), 1);
        assert!(log.is_empty());
        log.record(DeltaSign::Delete, &[0]);
        assert_eq!(log.events()[0].seq, 1, "counter survives the drain");
    }
}
