//! Heap tables: pages of fixed-width coded rows.

use crate::error::{DbError, DbResult};
use crate::page::Page;
use crate::stats::DbStats;
use crate::types::{Code, Schema, Tid};

/// A heap table: a schema plus a sequence of pages.
#[derive(Debug, Clone)]
pub struct Table {
    schema: Schema,
    pages: Vec<Page>,
    nrows: u64,
}

impl Table {
    /// An empty table with the given schema.
    pub fn new(schema: Schema) -> Self {
        Table {
            schema,
            pages: Vec::new(),
            nrows: 0,
        }
    }

    /// The table's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of stored rows.
    pub fn nrows(&self) -> u64 {
        self.nrows
    }

    /// Number of heap pages.
    pub fn npages(&self) -> u64 {
        self.pages.len() as u64
    }

    /// Approximate on-disk size in bytes (pages are the unit of I/O).
    pub fn size_bytes(&self) -> u64 {
        self.npages() * crate::page::PAGE_SIZE as u64
    }

    /// Append one validated row.
    pub fn insert(&mut self, row: &[Code]) -> DbResult<()> {
        self.schema.check_row(row)?;
        self.insert_unchecked(row);
        Ok(())
    }

    /// Append one row without range validation (bulk-load fast path; arity is
    /// still enforced by the page in debug builds).
    pub fn insert_unchecked(&mut self, row: &[Code]) {
        if self.pages.last_mut().map_or(true, |p| !p.push_row(row)) {
            let mut page = Page::new(self.schema.arity());
            let ok = page.push_row(row);
            debug_assert!(ok, "fresh page must accept a row");
            self.pages.push(page);
        }
        self.nrows += 1;
    }

    /// Bulk-load rows, validating each.
    pub fn load<'a>(&mut self, rows: impl IntoIterator<Item = &'a [Code]>) -> DbResult<u64> {
        let mut n = 0;
        for row in rows {
            self.insert(row)?;
            n += 1;
        }
        Ok(n)
    }

    /// Delete all rows matching `pred`, compacting the heap (TIDs of
    /// surviving rows change — the paper's middleware never relies on TID
    /// stability across DML, and neither may callers). Charges a full
    /// scan plus page writes for the rewritten heap. Returns rows removed.
    pub fn delete_where(&mut self, pred: &crate::expr::Pred, stats: &DbStats) -> u64 {
        self.delete_where_with(pred, stats, |_| {})
    }

    /// [`Table::delete_where`] with an observer: `on_delete` sees each
    /// removed row (in scan order) before the heap is rewritten. The hook is
    /// how [`crate::Database`] captures delete events for an enabled
    /// [`crate::delta::DeltaLog`] without a second scan.
    pub fn delete_where_with(
        &mut self,
        pred: &crate::expr::Pred,
        stats: &DbStats,
        mut on_delete: impl FnMut(&[Code]),
    ) -> u64 {
        let mut kept = Table::new(self.schema.clone());
        let mut removed = 0;
        for (_, row) in self.scan(stats) {
            if pred.eval(row) {
                removed += 1;
                on_delete(row);
            } else {
                kept.insert_unchecked(row);
            }
        }
        stats.add_pages_written(kept.npages());
        self.pages = kept.pages;
        self.nrows = kept.nrows;
        removed
    }

    /// Update all rows matching `pred`: each `(column, value)` assignment is
    /// applied to every match. Assignments are validated against the schema
    /// up front; on error the table is untouched. Like [`Table::delete_where`]
    /// this rewrites the heap (row count and row order are preserved, so TIDs
    /// happen to survive, but callers must not rely on that). Charges a full
    /// scan plus page writes for the rewritten heap. Returns rows changed —
    /// matches whose assignments were all already in place do not count.
    pub fn update_where(
        &mut self,
        pred: &crate::expr::Pred,
        assignments: &[(usize, Code)],
        stats: &DbStats,
    ) -> DbResult<u64> {
        self.update_where_with(pred, assignments, stats, |_, _| {})
    }

    /// [`Table::update_where`] with an observer: `on_change` sees each
    /// `(old, new)` image pair (in scan order) for rows the update actually
    /// changed. The hook is how [`crate::Database`] logs an UPDATE as a
    /// delete of the old image plus an insert of the new one.
    pub fn update_where_with(
        &mut self,
        pred: &crate::expr::Pred,
        assignments: &[(usize, Code)],
        stats: &DbStats,
        mut on_change: impl FnMut(&[Code], &[Code]),
    ) -> DbResult<u64> {
        for &(col, value) in assignments {
            let meta = self
                .schema
                .columns()
                .get(col)
                .ok_or_else(|| DbError::UnknownColumn(format!("#{col}")))?;
            if value >= meta.cardinality() {
                return Err(DbError::ValueOutOfRange {
                    column: meta.name().to_string(),
                    value,
                    cardinality: meta.cardinality(),
                });
            }
        }
        let mut rewritten = Table::new(self.schema.clone());
        let mut changed = 0;
        let mut new_row: Vec<Code> = Vec::with_capacity(self.schema.arity());
        for (_, row) in self.scan(stats) {
            if pred.eval(row) {
                new_row.clear();
                new_row.extend_from_slice(row);
                for &(col, value) in assignments {
                    new_row[col] = value;
                }
                if new_row[..] != *row {
                    changed += 1;
                    on_change(row, &new_row);
                }
                rewritten.insert_unchecked(&new_row);
            } else {
                rewritten.insert_unchecked(row);
            }
        }
        stats.add_pages_written(rewritten.npages());
        self.pages = rewritten.pages;
        self.nrows = rewritten.nrows;
        Ok(changed)
    }

    /// Fetch a single row by TID. Charges one page read (random access).
    pub fn fetch_by_tid(&self, tid: Tid, stats: &DbStats) -> DbResult<&[Code]> {
        let arity = self.schema.arity();
        let per_page = Page::capacity_rows(arity) as u64;
        let page_idx = (tid.0 / per_page) as usize;
        let row_idx = (tid.0 % per_page) as usize;
        let page = self
            .pages
            .get(page_idx)
            .ok_or(DbError::CursorClosed)
            .and_then(|p| {
                if row_idx < p.nrows() {
                    Ok(p)
                } else {
                    Err(DbError::CursorClosed)
                }
            })?;
        stats.add_pages_read(1);
        stats.add_tid_fetches(1);
        Ok(page.row(row_idx))
    }

    /// Fetch a row by TID without charging I/O (the caller accounts for
    /// page access itself, e.g. the keyset cursor's page-granular charging).
    pub fn row_by_tid_unaccounted(&self, tid: Tid) -> DbResult<&[Code]> {
        let arity = self.schema.arity();
        let per_page = Page::capacity_rows(arity) as u64;
        let page_idx = (tid.0 / per_page) as usize;
        let row_idx = (tid.0 % per_page) as usize;
        self.pages
            .get(page_idx)
            .filter(|p| row_idx < p.nrows())
            .map(|p| p.row(row_idx))
            .ok_or(DbError::CursorClosed)
    }

    /// Sequential scan charging page reads and scanned rows to `stats`.
    pub fn scan<'a>(&'a self, stats: &'a DbStats) -> ScanIter<'a> {
        stats.add_seq_scan();
        ScanIter {
            table: self,
            stats,
            page_idx: 0,
            row_idx: 0,
            tid: 0,
            page_charged: false,
        }
    }

    /// Iterate rows without touching statistics. For server-internal use
    /// (e.g. validation, tests); real access paths must use [`Table::scan`].
    pub fn rows_unaccounted(&self) -> impl Iterator<Item = &[Code]> + '_ {
        self.pages.iter().flat_map(|p| p.rows())
    }

    /// Raw page access (spooling helpers).
    pub fn pages(&self) -> &[Page] {
        &self.pages
    }
}

/// Sequential-scan iterator that charges I/O as it advances: one page read
/// per page entered, one scanned row per row yielded.
pub struct ScanIter<'a> {
    table: &'a Table,
    stats: &'a DbStats,
    page_idx: usize,
    row_idx: usize,
    tid: u64,
    page_charged: bool,
}

impl<'a> Iterator for ScanIter<'a> {
    type Item = (Tid, &'a [Code]);

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            let page = self.table.pages.get(self.page_idx)?;
            if !self.page_charged {
                self.stats.add_pages_read(1);
                self.page_charged = true;
            }
            if self.row_idx < page.nrows() {
                let row = page.row(self.row_idx);
                self.row_idx += 1;
                let tid = Tid(self.tid);
                self.tid += 1;
                self.stats.add_rows_scanned(1);
                return Some((tid, row));
            }
            self.page_idx += 1;
            self.row_idx = 0;
            self.page_charged = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_table() -> Table {
        let mut t = Table::new(Schema::from_pairs(&[("a", 10), ("class", 3)]));
        for i in 0..10u16 {
            t.insert(&[i % 10, i % 3]).unwrap();
        }
        t
    }

    #[test]
    fn insert_and_count() {
        let t = small_table();
        assert_eq!(t.nrows(), 10);
        assert_eq!(t.npages(), 1);
    }

    #[test]
    fn insert_rejects_bad_rows() {
        let mut t = Table::new(Schema::from_pairs(&[("a", 2)]));
        assert!(matches!(
            t.insert(&[5]),
            Err(DbError::ValueOutOfRange { .. })
        ));
        assert!(matches!(
            t.insert(&[0, 0]),
            Err(DbError::ArityMismatch { .. })
        ));
        assert_eq!(t.nrows(), 0);
    }

    #[test]
    fn scan_visits_all_rows_in_order_and_charges_stats() {
        let t = small_table();
        let stats = DbStats::new();
        let rows: Vec<Vec<Code>> = t.scan(&stats).map(|(_, r)| r.to_vec()).collect();
        assert_eq!(rows.len(), 10);
        assert_eq!(rows[3], vec![3, 0]);
        let snap = stats.snapshot();
        assert_eq!(snap.rows_scanned, 10);
        assert_eq!(snap.pages_read, 1);
        assert_eq!(snap.seq_scans, 1);
    }

    #[test]
    fn multi_page_tables_charge_per_page() {
        // arity 2 → 2048 rows per page; 5000 rows → 3 pages.
        let mut t = Table::new(Schema::from_pairs(&[("a", 100), ("class", 2)]));
        for i in 0..5000u32 {
            t.insert(&[(i % 100) as Code, (i % 2) as Code]).unwrap();
        }
        assert_eq!(t.npages(), 3);
        let stats = DbStats::new();
        assert_eq!(t.scan(&stats).count(), 5000);
        assert_eq!(stats.snapshot().pages_read, 3);
    }

    #[test]
    fn tids_are_stable_for_fetch() {
        let t = small_table();
        let stats = DbStats::new();
        let pairs: Vec<(Tid, Vec<Code>)> =
            t.scan(&stats).map(|(tid, r)| (tid, r.to_vec())).collect();
        for (tid, row) in &pairs {
            let fetched = t.fetch_by_tid(*tid, &stats).unwrap();
            assert_eq!(fetched, &row[..]);
        }
        // each fetch is a random page read
        assert_eq!(stats.snapshot().tid_fetches, 10);
    }

    #[test]
    fn fetch_by_tid_out_of_range_errors() {
        let t = small_table();
        let stats = DbStats::new();
        assert!(t.fetch_by_tid(Tid(10_000), &stats).is_err());
    }

    #[test]
    fn size_bytes_is_page_multiple() {
        let t = small_table();
        assert_eq!(t.size_bytes(), 8192);
    }

    #[test]
    fn delete_where_with_observes_removed_rows() {
        let mut t = small_table();
        let stats = DbStats::new();
        let mut seen = Vec::new();
        let removed =
            t.delete_where_with(&crate::expr::Pred::Eq { col: 1, value: 0 }, &stats, |row| {
                seen.push(row.to_vec())
            });
        assert_eq!(removed as usize, seen.len());
        assert!(seen.iter().all(|r| r[1] == 0));
        assert_eq!(t.nrows() + removed, 10);
    }

    #[test]
    fn update_where_rewrites_matches_and_charges() {
        let mut t = small_table();
        let stats = DbStats::new();
        let mut pairs = Vec::new();
        let changed = t
            .update_where_with(
                &crate::expr::Pred::Eq { col: 0, value: 3 },
                &[(1, 2)],
                &stats,
                |old, new| pairs.push((old.to_vec(), new.to_vec())),
            )
            .unwrap();
        // small_table: row i = [i%10, i%3]; only row 3 = [3, 0] matches a=3.
        assert_eq!(changed, 1);
        assert_eq!(pairs, vec![(vec![3, 0], vec![3, 2])]);
        assert_eq!(t.nrows(), 10, "updates never change the row count");
        let snap = stats.snapshot();
        assert_eq!(snap.rows_scanned, 10, "update pays a full scan");
        assert!(snap.pages_written >= 1, "rewritten heap pays page writes");
        let rows: Vec<Vec<Code>> = t.rows_unaccounted().map(|r| r.to_vec()).collect();
        assert_eq!(rows[3], vec![3, 2]);
        assert_eq!(rows[4], vec![4, 1], "non-matches untouched");
    }

    #[test]
    fn update_where_counts_only_real_changes() {
        let mut t = small_table();
        let stats = DbStats::new();
        // Row 0 = [0, 0]: assigning class=0 changes nothing.
        let changed = t
            .update_where(
                &crate::expr::Pred::Eq { col: 0, value: 0 },
                &[(1, 0)],
                &stats,
            )
            .unwrap();
        assert_eq!(changed, 0);
    }

    #[test]
    fn update_where_validates_assignments_without_mutating() {
        let mut t = small_table();
        let stats = DbStats::new();
        let before: Vec<Vec<Code>> = t.rows_unaccounted().map(|r| r.to_vec()).collect();
        assert!(matches!(
            t.update_where(&crate::expr::Pred::True, &[(1, 99)], &stats),
            Err(DbError::ValueOutOfRange { .. })
        ));
        assert!(matches!(
            t.update_where(&crate::expr::Pred::True, &[(7, 0)], &stats),
            Err(DbError::UnknownColumn(_))
        ));
        let after: Vec<Vec<Code>> = t.rows_unaccounted().map(|r| r.to_vec()).collect();
        assert_eq!(before, after, "failed validation leaves the heap alone");
    }
}
