//! Database persistence: a compact binary snapshot format.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic "SCLSDB01"
//! u32 table_count
//! per table:
//!   str  name                      (u32 length + UTF-8 bytes)
//!   u32  column_count
//!   per column:
//!     str  name
//!     u16  cardinality
//!     u8   has_labels
//!     [str × cardinality labels]   (if has_labels)
//!   u64  row_count
//!   row_count × arity × u16 codes
//! ```
//!
//! Only base tables persist; temp tables, TID sets, and statistics are
//! session state by design.

use crate::database::Database;
use crate::error::{DbError, DbResult};
use crate::storage::Table;
use crate::types::{Code, ColumnMeta, Schema, CODE_BYTES};
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"SCLSDB01";

fn write_str(out: &mut impl Write, s: &str) -> DbResult<()> {
    out.write_all(&(s.len() as u32).to_le_bytes())?;
    out.write_all(s.as_bytes())?;
    Ok(())
}

fn read_str(input: &mut impl Read) -> DbResult<String> {
    let mut len = [0u8; 4];
    input.read_exact(&mut len)?;
    let len = u32::from_le_bytes(len) as usize;
    if len > 1 << 20 {
        return Err(corrupt("string length"));
    }
    let mut buf = vec![0u8; len];
    input.read_exact(&mut buf)?;
    String::from_utf8(buf).map_err(|_| corrupt("string encoding"))
}

fn corrupt(what: &str) -> DbError {
    DbError::Parse {
        message: format!("corrupt database file: bad {what}"),
        position: 0,
    }
}

/// Write a snapshot of every base table to `path`.
pub fn save_database(db: &Database, path: impl AsRef<Path>) -> DbResult<()> {
    let mut out = BufWriter::new(File::create(path)?);
    out.write_all(MAGIC)?;
    let mut names: Vec<&str> = db.table_names().collect();
    names.sort_unstable(); // deterministic files
    out.write_all(&(names.len() as u32).to_le_bytes())?;
    for name in names {
        let table = db.table(name).expect("listed table exists");
        write_str(&mut out, name)?;
        let schema = table.schema();
        out.write_all(&(schema.arity() as u32).to_le_bytes())?;
        for col in schema.columns() {
            write_str(&mut out, col.name())?;
            out.write_all(&col.cardinality().to_le_bytes())?;
            let has_labels = col.has_labels();
            out.write_all(&[u8::from(has_labels)])?;
            if has_labels {
                for c in 0..col.cardinality() {
                    write_str(&mut out, &col.label(c))?;
                }
            }
        }
        out.write_all(&table.nrows().to_le_bytes())?;
        for row in table.rows_unaccounted() {
            for &code in row {
                out.write_all(&code.to_le_bytes())?;
            }
        }
    }
    out.flush()?;
    Ok(())
}

/// Load a snapshot written by [`save_database`].
pub fn open_database(path: impl AsRef<Path>) -> DbResult<Database> {
    let mut input = BufReader::new(File::open(path)?);
    let mut magic = [0u8; 8];
    input.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(corrupt("magic header"));
    }
    let mut count = [0u8; 4];
    input.read_exact(&mut count)?;
    let ntables = u32::from_le_bytes(count);
    let mut db = Database::new();
    for _ in 0..ntables {
        let name = read_str(&mut input)?;
        let mut ncols = [0u8; 4];
        input.read_exact(&mut ncols)?;
        let ncols = u32::from_le_bytes(ncols) as usize;
        if ncols == 0 || ncols > 4096 {
            return Err(corrupt("column count"));
        }
        let mut columns = Vec::with_capacity(ncols);
        for _ in 0..ncols {
            let col_name = read_str(&mut input)?;
            let mut card = [0u8; 2];
            input.read_exact(&mut card)?;
            let card = u16::from_le_bytes(card);
            if card == 0 {
                return Err(corrupt("cardinality"));
            }
            let mut flag = [0u8; 1];
            input.read_exact(&mut flag)?;
            if flag[0] > 1 {
                return Err(corrupt("label flag"));
            }
            if flag[0] == 1 {
                let labels: DbResult<Vec<String>> =
                    (0..card).map(|_| read_str(&mut input)).collect();
                columns.push(ColumnMeta::with_labels(col_name, labels?));
            } else {
                columns.push(ColumnMeta::new(col_name, card));
            }
        }
        let schema = Schema::new(columns);
        let arity = schema.arity();
        let mut nrows = [0u8; 8];
        input.read_exact(&mut nrows)?;
        let nrows = u64::from_le_bytes(nrows);
        let mut table = Table::new(schema);
        let mut row_buf = vec![0u8; arity * CODE_BYTES];
        let mut row: Vec<Code> = Vec::with_capacity(arity);
        for _ in 0..nrows {
            input.read_exact(&mut row_buf)?;
            row.clear();
            row.extend(
                row_buf
                    .chunks_exact(CODE_BYTES)
                    .map(|b| Code::from_le_bytes(b.try_into().expect("CODE_BYTES-wide chunk"))),
            );
            table.insert(&row).map_err(|_| corrupt("row data"))?;
        }
        db.register_table(name, table)?;
    }
    // Trailing garbage means the file is not what it claims to be.
    let mut extra = [0u8; 1];
    match input.read(&mut extra)? {
        0 => Ok(db),
        _ => Err(corrupt("trailing data")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sql::execute;

    fn temp_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!(
            "scaleclass-persist-{}-{tag}.db",
            std::process::id()
        ))
    }

    fn sample_db() -> Database {
        let mut db = Database::new();
        execute(
            &mut db,
            "CREATE TABLE t (a CARDINALITY 4, class CARDINALITY 2)",
        )
        .unwrap();
        for i in 0..100u16 {
            db.insert("t", &[i % 4, i % 2]).unwrap();
        }
        // A labelled table too.
        let labelled = crate::csv::import_csv(std::io::Cursor::new(
            "color,size\nred,big\nblue,small\nred,small\n",
        ))
        .unwrap();
        db.register_table("shapes", labelled).unwrap();
        db
    }

    #[test]
    fn round_trip_preserves_tables_and_labels() {
        let path = temp_path("roundtrip");
        let db = sample_db();
        save_database(&db, &path).unwrap();
        let loaded = open_database(&path).unwrap();
        std::fs::remove_file(&path).unwrap();

        let t = loaded.table("t").unwrap();
        assert_eq!(t.nrows(), 100);
        assert_eq!(t.schema(), db.table("t").unwrap().schema());
        let rows_a: Vec<Vec<Code>> = db
            .table("t")
            .unwrap()
            .rows_unaccounted()
            .map(|r| r.to_vec())
            .collect();
        let rows_b: Vec<Vec<Code>> = t.rows_unaccounted().map(|r| r.to_vec()).collect();
        assert_eq!(rows_a, rows_b);

        let shapes = loaded.table("shapes").unwrap();
        assert_eq!(shapes.schema().column(0).label(1), "blue");
        assert_eq!(shapes.schema().column(0).code_of("red"), Some(0));
    }

    #[test]
    fn loaded_database_is_queryable() {
        let path = temp_path("query");
        save_database(&sample_db(), &path).unwrap();
        let mut loaded = open_database(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        let rs = execute(&mut loaded, "SELECT COUNT(*) FROM t WHERE a = 1")
            .unwrap()
            .into_rows()
            .unwrap();
        assert_eq!(rs.rows[0][0].as_int(), Some(25));
    }

    #[test]
    fn corrupt_files_are_rejected() {
        let path = temp_path("corrupt");
        std::fs::write(&path, b"definitely not a database").unwrap();
        assert!(open_database(&path).is_err());
        // truncated real file
        save_database(&sample_db(), &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        assert!(open_database(&path).is_err());
        // trailing garbage
        let mut extended = bytes.clone();
        extended.push(0xFF);
        std::fs::write(&path, &extended).unwrap();
        assert!(open_database(&path).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_errors() {
        assert!(open_database("/nonexistent/scaleclass.db").is_err());
    }

    #[test]
    fn round_trip_after_delete_pins_compaction() {
        // Deletes compact the heap (no tombstones); a snapshot written
        // afterwards must contain exactly the surviving rows, and loading
        // it must reproduce the same compact heap shape.
        let path = temp_path("post-delete");
        let mut db = sample_db();
        let removed = db
            .delete_where("t", &crate::expr::Pred::Eq { col: 0, value: 2 })
            .unwrap();
        assert_eq!(removed, 25);
        save_database(&db, &path).unwrap();
        let loaded = open_database(&path).unwrap();
        std::fs::remove_file(&path).unwrap();

        let before = db.table("t").unwrap();
        let after = loaded.table("t").unwrap();
        assert_eq!(after.nrows(), 75);
        assert_eq!(after.nrows(), before.nrows());
        assert_eq!(after.npages(), before.npages(), "compact heap round-trips");
        let rows_a: Vec<Vec<Code>> = before.rows_unaccounted().map(|r| r.to_vec()).collect();
        let rows_b: Vec<Vec<Code>> = after.rows_unaccounted().map(|r| r.to_vec()).collect();
        assert_eq!(rows_a, rows_b, "row order survives the trip");
        assert!(rows_b.iter().all(|r| r[0] != 2), "deleted rows stay gone");
    }

    #[test]
    fn round_trip_after_update_preserves_rows_and_order() {
        let path = temp_path("post-update");
        let mut db = sample_db();
        let changed = db
            .update_where("t", &crate::expr::Pred::Eq { col: 0, value: 1 }, &[(1, 0)])
            .unwrap();
        assert!(changed > 0);
        save_database(&db, &path).unwrap();
        let mut loaded = open_database(&path).unwrap();
        std::fs::remove_file(&path).unwrap();

        let rows_a: Vec<Vec<Code>> = db
            .table("t")
            .unwrap()
            .rows_unaccounted()
            .map(|r| r.to_vec())
            .collect();
        let rows_b: Vec<Vec<Code>> = loaded
            .table("t")
            .unwrap()
            .rows_unaccounted()
            .map(|r| r.to_vec())
            .collect();
        assert_eq!(rows_a, rows_b);
        assert_eq!(loaded.table("t").unwrap().nrows(), 100);
        // Statistics shapes on the loaded copy stay self-consistent: a
        // fresh scan sees every row once.
        let rs = execute(&mut loaded, "SELECT COUNT(*) FROM t WHERE class = 0")
            .unwrap()
            .into_rows()
            .unwrap();
        // a=1 rows (25 of them) were forced to class 0; of the rest, the
        // even i → class 0 rows remain (a=0: i%4==0 → even → 25, a=2: 25
        // even, a=3: i odd → 0). Total 75.
        assert_eq!(rs.rows[0][0].as_int(), Some(75));
        // Epochs and delta logs are session state by design: they do not
        // survive persistence.
        assert_eq!(loaded.table_epoch("t"), 0);
        assert_eq!(loaded.delta_log_len("t"), 0);
    }

    #[test]
    fn empty_database_round_trips() {
        let path = temp_path("empty");
        save_database(&Database::new(), &path).unwrap();
        let loaded = open_database(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        assert_eq!(loaded.table_names().count(), 0);
    }
}
