//! Simulated client/server wire.
//!
//! In the paper the middleware fetches rows from SQL Server through an
//! OLE-DB cursor: every shipped row pays marshalling plus (amortized) a
//! network round trip per buffer. We reproduce that cost structure by
//! actually serializing each shipped row to a byte buffer and deserializing
//! it on the "client" side, and by accounting one round trip per batch.
//! This keeps the central asymmetry of the experiments — a row obtained
//! from the server is substantially more expensive than a row read from a
//! middleware staging file, which in turn beats an in-memory row — without
//! resorting to `sleep`-based fakery.

use crate::stats::DbStats;
use crate::types::{Code, CODE_BYTES};

/// Default number of rows per fetch buffer (one simulated round trip each).
pub const DEFAULT_BATCH_ROWS: usize = 1024;

/// Per-batch header bytes (message framing overhead on the simulated wire).
pub const BATCH_HEADER_BYTES: u64 = 64;

/// Encode one row into the wire buffer (little-endian codes).
#[inline]
pub fn encode_row(row: &[Code], buf: &mut Vec<u8>) {
    for &code in row {
        buf.extend_from_slice(&code.to_le_bytes());
    }
}

/// Decode the next row of `arity` codes from `buf` starting at byte
/// `offset`, appending codes to `out`. Returns the new offset.
#[inline]
pub fn decode_row(buf: &[u8], offset: usize, arity: usize, out: &mut Vec<Code>) -> usize {
    let mut pos = offset;
    for _ in 0..arity {
        let bytes = [buf[pos], buf[pos + 1]];
        out.push(Code::from_le_bytes(bytes));
        pos += CODE_BYTES;
    }
    pos
}

/// A reusable batch buffer representing one fetch round trip.
#[derive(Debug, Default)]
pub struct WireBatch {
    buf: Vec<u8>,
    rows: usize,
}

impl WireBatch {
    /// An empty batch buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Discard buffered rows without transmitting.
    pub fn clear(&mut self) {
        self.buf.clear();
        self.rows = 0;
    }

    /// Rows currently buffered.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Is the batch empty?
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Server side: marshal a row into the batch.
    pub fn push(&mut self, row: &[Code]) {
        encode_row(row, &mut self.buf);
        self.rows += 1;
    }

    /// Transmit the batch: charge wire statistics and unmarshal every row
    /// into `out` as a flat code vector (client side). Returns rows shipped.
    pub fn transmit(&mut self, arity: usize, stats: &DbStats, out: &mut Vec<Code>) -> usize {
        if self.rows == 0 {
            return 0;
        }
        stats.add_wire_round_trip();
        stats.add_rows_shipped(self.rows as u64);
        stats.add_bytes_shipped(self.buf.len() as u64 + BATCH_HEADER_BYTES);
        let mut offset = 0;
        out.reserve(self.rows * arity);
        for _ in 0..self.rows {
            offset = decode_row(&self.buf, offset, arity, out);
        }
        debug_assert_eq!(offset, self.buf.len());
        let shipped = self.rows;
        self.clear();
        shipped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trip() {
        let mut buf = Vec::new();
        encode_row(&[1, 65535, 42], &mut buf);
        encode_row(&[7, 0, 9], &mut buf);
        assert_eq!(buf.len(), 12);
        let mut out = Vec::new();
        let off = decode_row(&buf, 0, 3, &mut out);
        decode_row(&buf, off, 3, &mut out);
        assert_eq!(out, vec![1, 65535, 42, 7, 0, 9]);
    }

    #[test]
    fn batch_transmit_charges_stats_and_resets() {
        let stats = DbStats::new();
        let mut batch = WireBatch::new();
        batch.push(&[1, 2]);
        batch.push(&[3, 4]);
        let mut out = Vec::new();
        let n = batch.transmit(2, &stats, &mut out);
        assert_eq!(n, 2);
        assert_eq!(out, vec![1, 2, 3, 4]);
        assert!(batch.is_empty());
        let snap = stats.snapshot();
        assert_eq!(snap.rows_shipped, 2);
        assert_eq!(snap.wire_round_trips, 1);
        assert_eq!(snap.bytes_shipped, 8 + BATCH_HEADER_BYTES);
    }

    #[test]
    fn empty_batch_is_free() {
        let stats = DbStats::new();
        let mut batch = WireBatch::new();
        let mut out = Vec::new();
        assert_eq!(batch.transmit(3, &stats, &mut out), 0);
        assert_eq!(stats.snapshot().wire_round_trips, 0);
    }
}
