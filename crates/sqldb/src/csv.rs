//! CSV import/export for categorical tables.
//!
//! Real deployments load the data table from flat files before mining;
//! this module provides that path without external dependencies. Import
//! builds the value dictionaries (labels → codes) on the fly, producing a
//! labelled [`Schema`]; export writes labels back out.
//!
//! Format: header row of column names; fields separated by `,`; quoting
//! with `"` (doubled quotes escape); no embedded newlines inside quoted
//! fields are supported (classification data never needs them).

use crate::error::{DbError, DbResult};
use crate::storage::Table;
use crate::types::{Code, ColumnMeta, Schema};
use std::io::{BufRead, Write};

/// Split one CSV line into fields, honouring `"` quoting.
fn split_line(line: &str, lineno: usize) -> DbResult<Vec<String>> {
    let mut fields = Vec::new();
    let mut field = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        match c {
            '"' if in_quotes => {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    field.push('"');
                } else {
                    in_quotes = false;
                }
            }
            '"' if field.is_empty() => in_quotes = true,
            '"' => {
                return Err(DbError::Parse {
                    message: format!("stray quote in CSV line {lineno}"),
                    position: 0,
                })
            }
            ',' if !in_quotes => fields.push(std::mem::take(&mut field)),
            other => field.push(other),
        }
    }
    if in_quotes {
        return Err(DbError::Parse {
            message: format!("unterminated quote in CSV line {lineno}"),
            position: 0,
        });
    }
    fields.push(field);
    Ok(fields)
}

fn quote(field: &str) -> String {
    if field.contains(',') || field.contains('"') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// Import a categorical CSV: every distinct string per column becomes a
/// code (in first-appearance order); the returned table's schema carries
/// the labels. Fails on ragged rows or > 65 535 distinct values.
pub fn import_csv(reader: impl BufRead) -> DbResult<Table> {
    let mut lines = reader.lines();
    let header = lines.next().ok_or_else(|| DbError::Parse {
        message: "empty CSV (no header)".into(),
        position: 0,
    })??;
    let names = split_line(&header, 1)?;
    let ncols = names.len();
    let mut dictionaries: Vec<Vec<String>> = vec![Vec::new(); ncols];
    let mut coded_rows: Vec<Vec<Code>> = Vec::new();

    for (i, line) in lines.enumerate() {
        let lineno = i + 2;
        let line = line?;
        if line.is_empty() {
            continue;
        }
        let fields = split_line(&line, lineno)?;
        if fields.len() != ncols {
            return Err(DbError::ArityMismatch {
                expected: ncols,
                got: fields.len(),
            });
        }
        let mut row = Vec::with_capacity(ncols);
        for (col, value) in fields.into_iter().enumerate() {
            let dict = &mut dictionaries[col];
            let code = match dict.iter().position(|v| *v == value) {
                Some(i) => i,
                None => {
                    if dict.len() >= u16::MAX as usize {
                        return Err(DbError::ValueOutOfRange {
                            column: names[col].clone(),
                            value: u16::MAX,
                            cardinality: u16::MAX,
                        });
                    }
                    dict.push(value);
                    dict.len() - 1
                }
            };
            row.push(code as Code);
        }
        coded_rows.push(row);
    }

    let columns: Vec<ColumnMeta> = names
        .into_iter()
        .zip(dictionaries)
        .map(|(name, mut labels)| {
            if labels.is_empty() {
                labels.push(String::new()); // empty column: single value
            }
            ColumnMeta::with_labels(name, labels)
        })
        .collect();
    let mut table = Table::new(Schema::new(columns));
    for row in &coded_rows {
        table.insert_unchecked(row);
    }
    Ok(table)
}

/// Export a table as labelled CSV (header + one line per row).
pub fn export_csv(table: &Table, mut out: impl Write) -> DbResult<()> {
    let schema = table.schema();
    let header: Vec<String> = schema.columns().iter().map(|c| quote(c.name())).collect();
    writeln!(out, "{}", header.join(","))?;
    for row in table.rows_unaccounted() {
        let line: Vec<String> = row
            .iter()
            .enumerate()
            .map(|(col, &code)| quote(&schema.column(col).label(code)))
            .collect();
        writeln!(out, "{}", line.join(","))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    const SAMPLE: &str = "outlook,humidity,play\n\
                          sunny,high,no\n\
                          overcast,high,yes\n\
                          rain,normal,yes\n\
                          sunny,normal,yes\n";

    #[test]
    fn import_builds_dictionaries_in_appearance_order() {
        let t = import_csv(Cursor::new(SAMPLE)).unwrap();
        assert_eq!(t.nrows(), 4);
        let s = t.schema();
        assert_eq!(s.arity(), 3);
        assert_eq!(s.column(0).name(), "outlook");
        assert_eq!(s.column(0).cardinality(), 3);
        assert_eq!(s.column(0).code_of("sunny"), Some(0));
        assert_eq!(s.column(0).code_of("rain"), Some(2));
        assert_eq!(s.column(2).code_of("yes"), Some(1));
        let rows: Vec<Vec<Code>> = t.rows_unaccounted().map(|r| r.to_vec()).collect();
        assert_eq!(rows[0], vec![0, 0, 0]);
        assert_eq!(rows[2], vec![2, 1, 1]);
    }

    #[test]
    fn round_trip_preserves_content() {
        let t = import_csv(Cursor::new(SAMPLE)).unwrap();
        let mut buf = Vec::new();
        export_csv(&t, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text, SAMPLE);
    }

    #[test]
    fn quoting_round_trip() {
        let csv = "name,class\n\"a,b\",x\n\"say \"\"hi\"\"\",y\n";
        let t = import_csv(Cursor::new(csv)).unwrap();
        assert_eq!(t.schema().column(0).label(0), "a,b");
        assert_eq!(t.schema().column(0).label(1), "say \"hi\"");
        let mut buf = Vec::new();
        export_csv(&t, &mut buf).unwrap();
        assert_eq!(String::from_utf8(buf).unwrap(), csv);
    }

    #[test]
    fn ragged_rows_rejected() {
        let csv = "a,b\n1,2\n3\n";
        assert!(matches!(
            import_csv(Cursor::new(csv)),
            Err(DbError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn empty_file_and_blank_lines() {
        assert!(import_csv(Cursor::new("")).is_err());
        let t = import_csv(Cursor::new("a,b\n\n1,2\n\n")).unwrap();
        assert_eq!(t.nrows(), 1);
    }

    #[test]
    fn stray_and_unterminated_quotes_rejected() {
        assert!(import_csv(Cursor::new("a\nfo\"o\n")).is_err());
        assert!(import_csv(Cursor::new("a\n\"unclosed\n")).is_err());
    }

    #[test]
    fn imported_table_is_minable() {
        // The labelled table plugs straight into the middleware.
        let t = import_csv(Cursor::new(SAMPLE)).unwrap();
        let mut db = crate::database::Database::new();
        db.register_table("weather", t).unwrap();
        let rs = crate::sql::execute(&mut db, "SELECT play, COUNT(*) FROM weather GROUP BY play")
            .unwrap()
            .into_rows()
            .unwrap();
        assert_eq!(rs.len(), 2);
    }
}
