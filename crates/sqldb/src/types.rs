//! Core value and schema types.
//!
//! Following the paper (§1), all attributes are categorical (numeric
//! attributes are assumed discretized upstream, see \[CFB97\]). Every column
//! therefore stores small integer *codes* in `0..cardinality`. Rows are
//! fixed-width sequences of codes, which keeps pages compact and makes scan
//! cost proportional to bytes touched.

use crate::error::{DbError, DbResult};
use std::fmt;

/// A categorical value code. `0..cardinality` for its column.
pub type Code = u16;

/// Bytes occupied by one stored code.
pub const CODE_BYTES: usize = std::mem::size_of::<Code>();

/// Metadata for a single column: a name, the number of distinct values, and
/// optional human-readable labels for each code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnMeta {
    name: String,
    cardinality: u16,
    labels: Option<Vec<String>>,
}

impl ColumnMeta {
    /// A column with `cardinality` distinct values and no labels.
    pub fn new(name: impl Into<String>, cardinality: u16) -> Self {
        assert!(cardinality > 0, "a column needs at least one value");
        ColumnMeta {
            name: name.into(),
            cardinality,
            labels: None,
        }
    }

    /// A column whose values carry display labels; cardinality is the label
    /// count.
    pub fn with_labels(name: impl Into<String>, labels: Vec<String>) -> Self {
        assert!(!labels.is_empty(), "a column needs at least one value");
        assert!(labels.len() <= u16::MAX as usize);
        ColumnMeta {
            name: name.into(),
            cardinality: labels.len() as u16,
            labels: Some(labels),
        }
    }

    /// The column's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of distinct values the column may hold.
    pub fn cardinality(&self) -> u16 {
        self.cardinality
    }

    /// Display label for a code: the stored label if present, otherwise the
    /// code rendered as a number.
    pub fn label(&self, code: Code) -> String {
        match &self.labels {
            Some(labels) => labels
                .get(code as usize)
                .cloned()
                .unwrap_or_else(|| code.to_string()),
            None => code.to_string(),
        }
    }

    /// Does this column carry display labels?
    pub fn has_labels(&self) -> bool {
        self.labels.is_some()
    }

    /// Resolve a label back to its code, if this column has labels.
    pub fn code_of(&self, label: &str) -> Option<Code> {
        self.labels
            .as_ref()?
            .iter()
            .position(|l| l == label)
            .map(|i| i as Code)
    }
}

/// An ordered set of columns. Row layout is one [`Code`] per column in schema
/// order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    columns: Vec<ColumnMeta>,
}

impl Schema {
    /// A schema over the given columns (at least one).
    pub fn new(columns: Vec<ColumnMeta>) -> Self {
        assert!(!columns.is_empty(), "a schema needs at least one column");
        Schema { columns }
    }

    /// Convenience constructor: `(name, cardinality)` pairs.
    pub fn from_pairs(pairs: &[(&str, u16)]) -> Self {
        Schema::new(pairs.iter().map(|(n, c)| ColumnMeta::new(*n, *c)).collect())
    }

    /// The ordered columns.
    pub fn columns(&self) -> &[ColumnMeta] {
        &self.columns
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Width of one stored row in bytes.
    pub fn row_bytes(&self) -> usize {
        self.arity() * CODE_BYTES
    }

    /// Column metadata by index.
    pub fn column(&self, idx: usize) -> &ColumnMeta {
        &self.columns[idx]
    }

    /// Index of a column by name (case-sensitive, then case-insensitive
    /// fallback, which mirrors how the SQL layer resolves identifiers).
    pub fn column_index(&self, name: &str) -> DbResult<usize> {
        if let Some(i) = self.columns.iter().position(|c| c.name == name) {
            return Ok(i);
        }
        self.columns
            .iter()
            .position(|c| c.name.eq_ignore_ascii_case(name))
            .ok_or_else(|| DbError::UnknownColumn(name.to_string()))
    }

    /// Validate one row against the schema: arity and per-column range.
    pub fn check_row(&self, row: &[Code]) -> DbResult<()> {
        if row.len() != self.arity() {
            return Err(DbError::ArityMismatch {
                expected: self.arity(),
                got: row.len(),
            });
        }
        for (value, col) in row.iter().zip(&self.columns) {
            if *value >= col.cardinality {
                return Err(DbError::ValueOutOfRange {
                    column: col.name.clone(),
                    value: *value,
                    cardinality: col.cardinality,
                });
            }
        }
        Ok(())
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}:{}", c.name, c.cardinality)?;
        }
        write!(f, ")")
    }
}

/// A row identifier: position of the row within its table's heap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Tid(pub u64);

impl fmt::Display for Tid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tid:{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn abc_schema() -> Schema {
        Schema::from_pairs(&[("a", 4), ("b", 2), ("class", 3)])
    }

    #[test]
    fn column_lookup_by_name() {
        let s = abc_schema();
        assert_eq!(s.column_index("a").unwrap(), 0);
        assert_eq!(s.column_index("class").unwrap(), 2);
        assert_eq!(s.column_index("CLASS").unwrap(), 2, "case-insensitive");
        assert!(matches!(
            s.column_index("missing"),
            Err(DbError::UnknownColumn(_))
        ));
    }

    #[test]
    fn case_sensitive_match_wins_over_insensitive() {
        let s = Schema::from_pairs(&[("A", 2), ("a", 2)]);
        assert_eq!(s.column_index("a").unwrap(), 1);
        assert_eq!(s.column_index("A").unwrap(), 0);
    }

    #[test]
    fn row_validation() {
        let s = abc_schema();
        assert!(s.check_row(&[3, 1, 2]).is_ok());
        assert!(matches!(
            s.check_row(&[4, 0, 0]),
            Err(DbError::ValueOutOfRange { .. })
        ));
        assert!(matches!(
            s.check_row(&[0, 0]),
            Err(DbError::ArityMismatch {
                expected: 3,
                got: 2
            })
        ));
    }

    #[test]
    fn row_bytes_is_two_per_column() {
        assert_eq!(abc_schema().row_bytes(), 6);
    }

    #[test]
    fn labels_round_trip() {
        let col = ColumnMeta::with_labels("color", vec!["red".into(), "blue".into()]);
        assert_eq!(col.cardinality(), 2);
        assert_eq!(col.label(1), "blue");
        assert_eq!(col.code_of("red"), Some(0));
        assert_eq!(col.code_of("green"), None);
        // Unlabelled columns render codes numerically.
        let plain = ColumnMeta::new("x", 5);
        assert_eq!(plain.label(3), "3");
        assert_eq!(plain.code_of("3"), None);
    }

    #[test]
    fn schema_display_lists_columns() {
        assert_eq!(abc_schema().to_string(), "(a:4, b:2, class:3)");
    }
}
