//! Heap pages.
//!
//! Tables are stored as a sequence of fixed-size pages of packed fixed-width
//! rows. The page is the unit of I/O accounting: a sequential scan charges
//! one logical page read per page it touches, which is what makes the
//! server-scan cost in the experiments proportional to *table* size rather
//! than *result* size (the asymmetry the paper's staging exploits).

use crate::types::{Code, CODE_BYTES};

/// Page size in bytes. 8 KB, matching SQL Server 7.0's page size.
pub const PAGE_SIZE: usize = 8192;

/// Number of codes a page can hold.
pub const PAGE_CODES: usize = PAGE_SIZE / CODE_BYTES;

/// A fixed-size page of packed rows, each `arity` codes wide.
#[derive(Debug, Clone)]
pub struct Page {
    /// Packed row data; `nrows * arity` codes are valid.
    data: Vec<Code>,
    arity: usize,
    nrows: usize,
}

impl Page {
    /// An empty page for rows of the given arity.
    pub fn new(arity: usize) -> Self {
        assert!(arity > 0 && arity <= PAGE_CODES, "row too wide for a page");
        Page {
            data: Vec::with_capacity(Self::capacity_rows(arity) * arity),
            arity,
            nrows: 0,
        }
    }

    /// Rows of width `arity` that fit on one page.
    pub fn capacity_rows(arity: usize) -> usize {
        PAGE_CODES / arity
    }

    /// Append a row. Returns `false` (without modifying the page) when full.
    pub fn push_row(&mut self, row: &[Code]) -> bool {
        debug_assert_eq!(row.len(), self.arity);
        if self.nrows >= Self::capacity_rows(self.arity) {
            return false;
        }
        self.data.extend_from_slice(row);
        self.nrows += 1;
        true
    }

    /// Rows stored on the page.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Is the page empty?
    pub fn is_empty(&self) -> bool {
        self.nrows == 0
    }

    /// Row `i` as a code slice.
    pub fn row(&self, i: usize) -> &[Code] {
        let start = i * self.arity;
        &self.data[start..start + self.arity]
    }

    /// Iterate over all rows on the page.
    pub fn rows(&self) -> impl Iterator<Item = &[Code]> + '_ {
        self.data.chunks_exact(self.arity)
    }

    /// Raw packed codes (used by spooling and the simulated wire).
    pub fn raw(&self) -> &[Code] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_depends_on_arity() {
        assert_eq!(Page::capacity_rows(1), 4096);
        assert_eq!(Page::capacity_rows(4), 1024);
        assert_eq!(Page::capacity_rows(100), 40);
    }

    #[test]
    fn push_until_full() {
        let mut p = Page::new(2);
        let cap = Page::capacity_rows(2);
        for i in 0..cap {
            assert!(p.push_row(&[i as Code, 1]));
        }
        assert!(!p.push_row(&[0, 0]), "page must reject overflow");
        assert_eq!(p.nrows(), cap);
        assert_eq!(p.row(5), &[5, 1]);
    }

    #[test]
    fn rows_iterates_in_insert_order() {
        let mut p = Page::new(3);
        p.push_row(&[1, 2, 3]);
        p.push_row(&[4, 5, 6]);
        let rows: Vec<_> = p.rows().collect();
        assert_eq!(rows, vec![&[1, 2, 3][..], &[4, 5, 6][..]]);
    }

    #[test]
    fn empty_page() {
        let p = Page::new(7);
        assert!(p.is_empty());
        assert_eq!(p.rows().count(), 0);
    }
}
