//! Server-side I/O and query statistics.
//!
//! The 1999 experiments report wall-clock seconds on Pentium-II hardware.
//! We cannot reproduce those numbers, but the *shape* of every figure is a
//! function of how many pages were scanned, how many rows crossed the
//! client/server boundary, and how many separate scans were issued. These
//! counters make that shape deterministic and assertable in tests.

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic counters, shared via `Arc` between the database and its
/// cursors. All updates are `Relaxed`: counters are independent and only
/// ever read as point-in-time snapshots.
#[derive(Debug, Default)]
pub struct DbStats {
    /// Logical page reads performed by sequential scans and TID fetches.
    pub pages_read: AtomicU64,
    /// Logical page writes (temp-table materialization, spooling).
    pub pages_written: AtomicU64,
    /// Rows examined by scans (before any predicate filtering).
    pub rows_scanned: AtomicU64,
    /// Rows that crossed the server→client boundary.
    pub rows_shipped: AtomicU64,
    /// Bytes that crossed the server→client boundary (simulated wire).
    pub bytes_shipped: AtomicU64,
    /// Round trips on the simulated wire (one per fetched batch).
    pub wire_round_trips: AtomicU64,
    /// Sequential scans started (cursor opens and query-arm scans).
    pub seq_scans: AtomicU64,
    /// GROUP BY aggregations executed by the SQL engine (one per UNION arm).
    pub group_by_queries: AtomicU64,
    /// SQL statements executed.
    pub statements: AtomicU64,
    /// Temporary tables materialized (auxiliary access paths, §4.3.3a).
    pub temp_tables: AtomicU64,
    /// Rows fetched through a TID index access path (§4.3.3b).
    pub tid_fetches: AtomicU64,
    /// Keyset cursors opened (§4.3.3c).
    pub keyset_opens: AtomicU64,
}

impl DbStats {
    /// Fresh, all-zero counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Charge `n` logical page reads.
    pub fn add_pages_read(&self, n: u64) {
        self.pages_read.fetch_add(n, Ordering::Relaxed);
    }
    /// Charge `n` logical page writes.
    pub fn add_pages_written(&self, n: u64) {
        self.pages_written.fetch_add(n, Ordering::Relaxed);
    }
    /// Charge `n` rows examined by a scan.
    pub fn add_rows_scanned(&self, n: u64) {
        self.rows_scanned.fetch_add(n, Ordering::Relaxed);
    }
    /// Charge `n` rows crossing the server→client wire.
    pub fn add_rows_shipped(&self, n: u64) {
        self.rows_shipped.fetch_add(n, Ordering::Relaxed);
    }
    /// Charge `n` bytes crossing the server→client wire.
    pub fn add_bytes_shipped(&self, n: u64) {
        self.bytes_shipped.fetch_add(n, Ordering::Relaxed);
    }
    /// Charge one wire round trip (one fetched batch).
    pub fn add_wire_round_trip(&self) {
        self.wire_round_trips.fetch_add(1, Ordering::Relaxed);
    }
    /// Charge one sequential scan start.
    pub fn add_seq_scan(&self) {
        self.seq_scans.fetch_add(1, Ordering::Relaxed);
    }
    /// Charge one GROUP BY aggregation.
    pub fn add_group_by(&self) {
        self.group_by_queries.fetch_add(1, Ordering::Relaxed);
    }
    /// Charge one executed SQL statement.
    pub fn add_statement(&self) {
        self.statements.fetch_add(1, Ordering::Relaxed);
    }
    /// Charge one materialized temp structure (§4.3.3).
    pub fn add_temp_table(&self) {
        self.temp_tables.fetch_add(1, Ordering::Relaxed);
    }
    /// Charge `n` TID-indexed row fetches (§4.3.3b).
    pub fn add_tid_fetches(&self, n: u64) {
        self.tid_fetches.fetch_add(n, Ordering::Relaxed);
    }
    /// Charge one keyset-cursor open (§4.3.3c).
    pub fn add_keyset_open(&self) {
        self.keyset_opens.fetch_add(1, Ordering::Relaxed);
    }

    /// Point-in-time copy of all counters.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            pages_read: self.pages_read.load(Ordering::Relaxed),
            pages_written: self.pages_written.load(Ordering::Relaxed),
            rows_scanned: self.rows_scanned.load(Ordering::Relaxed),
            rows_shipped: self.rows_shipped.load(Ordering::Relaxed),
            bytes_shipped: self.bytes_shipped.load(Ordering::Relaxed),
            wire_round_trips: self.wire_round_trips.load(Ordering::Relaxed),
            seq_scans: self.seq_scans.load(Ordering::Relaxed),
            group_by_queries: self.group_by_queries.load(Ordering::Relaxed),
            statements: self.statements.load(Ordering::Relaxed),
            temp_tables: self.temp_tables.load(Ordering::Relaxed),
            tid_fetches: self.tid_fetches.load(Ordering::Relaxed),
            keyset_opens: self.keyset_opens.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of [`DbStats`]; supports `a - b` to express "work
/// done between two snapshots".
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Snapshot of [`DbStats::pages_read`] (pages read).
    pub pages_read: u64,
    /// Snapshot of [`DbStats::pages_written`] (pages written).
    pub pages_written: u64,
    /// Snapshot of [`DbStats::rows_scanned`] (rows scanned).
    pub rows_scanned: u64,
    /// Snapshot of [`DbStats::rows_shipped`] (rows shipped).
    pub rows_shipped: u64,
    /// Snapshot of [`DbStats::bytes_shipped`] (bytes shipped).
    pub bytes_shipped: u64,
    /// Snapshot of [`DbStats::wire_round_trips`] (wire round trips).
    pub wire_round_trips: u64,
    /// Snapshot of [`DbStats::seq_scans`] (seq scans).
    pub seq_scans: u64,
    /// Snapshot of [`DbStats::group_by_queries`] (group by queries).
    pub group_by_queries: u64,
    /// Snapshot of [`DbStats::statements`] (statements).
    pub statements: u64,
    /// Snapshot of [`DbStats::temp_tables`] (temp tables).
    pub temp_tables: u64,
    /// Snapshot of [`DbStats::tid_fetches`] (tid fetches).
    pub tid_fetches: u64,
    /// Snapshot of [`DbStats::keyset_opens`] (keyset opens).
    pub keyset_opens: u64,
}

impl std::ops::Sub for StatsSnapshot {
    type Output = StatsSnapshot;

    fn sub(self, rhs: StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            pages_read: self.pages_read - rhs.pages_read,
            pages_written: self.pages_written - rhs.pages_written,
            rows_scanned: self.rows_scanned - rhs.rows_scanned,
            rows_shipped: self.rows_shipped - rhs.rows_shipped,
            bytes_shipped: self.bytes_shipped - rhs.bytes_shipped,
            wire_round_trips: self.wire_round_trips - rhs.wire_round_trips,
            seq_scans: self.seq_scans - rhs.seq_scans,
            group_by_queries: self.group_by_queries - rhs.group_by_queries,
            statements: self.statements - rhs.statements,
            temp_tables: self.temp_tables - rhs.temp_tables,
            tid_fetches: self.tid_fetches - rhs.tid_fetches,
            keyset_opens: self.keyset_opens - rhs.keyset_opens,
        }
    }
}

impl std::ops::Add for StatsSnapshot {
    type Output = StatsSnapshot;

    fn add(self, rhs: StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            pages_read: self.pages_read + rhs.pages_read,
            pages_written: self.pages_written + rhs.pages_written,
            rows_scanned: self.rows_scanned + rhs.rows_scanned,
            rows_shipped: self.rows_shipped + rhs.rows_shipped,
            bytes_shipped: self.bytes_shipped + rhs.bytes_shipped,
            wire_round_trips: self.wire_round_trips + rhs.wire_round_trips,
            seq_scans: self.seq_scans + rhs.seq_scans,
            group_by_queries: self.group_by_queries + rhs.group_by_queries,
            statements: self.statements + rhs.statements,
            temp_tables: self.temp_tables + rhs.temp_tables,
            tid_fetches: self.tid_fetches + rhs.tid_fetches,
            keyset_opens: self.keyset_opens + rhs.keyset_opens,
        }
    }
}

/// Weights turning I/O counters into a scalar simulated cost. Units are
/// arbitrary; only ratios matter. Two presets capture the two hardware
/// eras the experiments care about:
///
/// * [`CostWeights::modern`] — today's ratios: local (middleware) disk is
///   several times cheaper per row than the client/server wire.
/// * [`CostWeights::lan1999`] — the paper's testbed: a 100 Mbit LAN and
///   period disks are near parity, which is what makes the paper's
///   Figure 8a crossover (server WHERE beats re-reading a static
///   middleware file) appear.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostWeights {
    /// Cost of one logical page read.
    pub page_read: u64,
    /// Cost of one logical page write.
    pub page_written: u64,
    /// Cost of examining one row during a scan.
    pub row_scanned: u64,
    /// Cost of shipping one row over the wire.
    pub row_shipped: u64,
    /// Cost of one wire round trip.
    pub round_trip: u64,
    /// Cost of one TID-indexed random fetch.
    pub tid_fetch: u64,
    /// Middleware staging-file row read / written.
    pub file_row_read: u64,
    /// Cost of writing one middleware staging-file row.
    pub file_row_written: u64,
    /// Middleware memory row touched (scan or staging).
    pub mem_row: u64,
    /// Fixed overhead per middleware staging file created.
    pub file_created: u64,
}

impl CostWeights {
    /// Modern ratios (the default everywhere).
    pub const fn modern() -> Self {
        CostWeights {
            page_read: 100,
            page_written: 150,
            row_scanned: 1,
            row_shipped: 20,
            round_trip: 1000,
            tid_fetch: 120,
            file_row_read: 4,
            file_row_written: 6,
            mem_row: 1,
            file_created: 2500,
        }
    }

    /// 1999 LAN-vs-disk ratios: reading a middleware file row costs about
    /// as much as receiving a row over the wire.
    pub const fn lan1999() -> Self {
        CostWeights {
            page_read: 100,
            page_written: 150,
            row_scanned: 1,
            row_shipped: 20,
            round_trip: 1000,
            tid_fetch: 120,
            file_row_read: 18,
            file_row_written: 22,
            mem_row: 1,
            file_created: 2500,
        }
    }
}

impl Default for CostWeights {
    fn default() -> Self {
        CostWeights::modern()
    }
}

impl StatsSnapshot {
    /// Simulated server cost under the default (modern) weights.
    pub fn simulated_cost(&self) -> u64 {
        self.simulated_cost_with(&CostWeights::modern())
    }

    /// Simulated server cost under explicit weights.
    pub fn simulated_cost_with(&self, w: &CostWeights) -> u64 {
        self.pages_read * w.page_read
            + self.pages_written * w.page_written
            + self.rows_scanned * w.row_scanned
            + self.rows_shipped * w.row_shipped
            + self.wire_round_trips * w.round_trip
            + self.tid_fetches * w.tid_fetch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let s = DbStats::new();
        s.add_pages_read(3);
        s.add_rows_scanned(100);
        s.add_rows_shipped(10);
        s.add_bytes_shipped(60);
        s.add_seq_scan();
        let snap = s.snapshot();
        assert_eq!(snap.pages_read, 3);
        assert_eq!(snap.rows_scanned, 100);
        assert_eq!(snap.rows_shipped, 10);
        assert_eq!(snap.bytes_shipped, 60);
        assert_eq!(snap.seq_scans, 1);
    }

    #[test]
    fn snapshot_subtraction_gives_deltas() {
        let s = DbStats::new();
        s.add_pages_read(5);
        let before = s.snapshot();
        s.add_pages_read(7);
        s.add_rows_shipped(2);
        let delta = s.snapshot() - before;
        assert_eq!(delta.pages_read, 7);
        assert_eq!(delta.rows_shipped, 2);
        assert_eq!(delta.rows_scanned, 0);
    }

    #[test]
    fn simulated_cost_weights_wire_heavier_than_scan() {
        let shipped = StatsSnapshot {
            rows_shipped: 100,
            ..Default::default()
        };
        let scanned = StatsSnapshot {
            rows_scanned: 100,
            ..Default::default()
        };
        assert!(shipped.simulated_cost() > scanned.simulated_cost());
    }
}
