//! Server-side cursors.
//!
//! [`ServerCursor`] is the forward-only filtered cursor the middleware uses
//! for its scan-based counting: the server evaluates the pushed-down filter
//! expression and ships only matching rows over the simulated wire (§4.3.1).
//!
//! [`KeysetCursor`] is access path (c) of §4.3.3: a snapshot of qualifying
//! TIDs taken at open time, over which later scans can run with an extra
//! *residual* filter applied server-side before shipping ("a stored
//! procedure that applies the filters on the results obtained by the cursor
//! before the results are returned").
//!
//! [`BlockCursor`] is the server half of the middleware's sampled counting
//! mode: a filtered cursor restricted to caller-supplied TID ranges — the
//! `TABLESAMPLE SYSTEM` analogue, where the client names which physical
//! blocks to read and the server never touches the rest of the heap. Rows
//! outside the ranges cost nothing; that skipped I/O is the entire point
//! of the sampled access path.

use crate::database::Database;
use crate::error::DbResult;
use crate::expr::Pred;
use crate::page::Page;
use crate::stats::DbStats;
use crate::storage::{ScanIter, Table};
use crate::types::{Code, Tid};
use crate::wire::{WireBatch, DEFAULT_BATCH_ROWS};

/// Forward-only cursor with server-side filtering and batched wire fetches.
pub struct ServerCursor<'a> {
    iter: ScanIter<'a>,
    pred: Pred,
    arity: usize,
    batch_rows: usize,
    batch: WireBatch,
    stats: &'a DbStats,
    exhausted: bool,
}

impl<'a> ServerCursor<'a> {
    pub(crate) fn new(table: &'a Table, pred: Pred, batch_rows: usize, stats: &'a DbStats) -> Self {
        ServerCursor {
            iter: table.scan(stats),
            pred,
            arity: table.schema().arity(),
            batch_rows: batch_rows.max(1),
            batch: WireBatch::new(),
            stats,
            exhausted: false,
        }
    }

    /// Number of codes per row in fetched data.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Fetch the next batch of matching rows, appending their codes (flat)
    /// to `out`. Returns the number of rows fetched; `0` means end of scan.
    pub fn fetch(&mut self, out: &mut Vec<Code>) -> usize {
        if self.exhausted {
            return 0;
        }
        debug_assert!(self.batch.is_empty());
        while self.batch.rows() < self.batch_rows {
            match self.iter.next() {
                Some((_, row)) => {
                    if self.pred.eval(row) {
                        self.batch.push(row);
                    }
                }
                None => {
                    self.exhausted = true;
                    break;
                }
            }
        }
        self.batch.transmit(self.arity, self.stats, out)
    }

    /// Drain the whole cursor into a flat vector. Returns total rows.
    pub fn fetch_all(&mut self, out: &mut Vec<Code>) -> usize {
        let mut total = 0;
        loop {
            let n = self.fetch(out);
            if n == 0 {
                return total;
            }
            total += n;
        }
    }
}

/// A snapshot of qualifying TIDs with server-side residual filtering on
/// re-scan. TIDs are kept sorted so a keyset scan touches each page once —
/// the "idealized" access the §5.2.5 experiment grants this technique.
pub struct KeysetCursor {
    table: String,
    tids: Vec<Tid>,
    arity: usize,
}

impl KeysetCursor {
    pub(crate) fn open(db: &Database, table: &str, pred: &Pred) -> DbResult<Self> {
        let t = db.table(table)?;
        let stats = db.stats();
        stats.add_keyset_open();
        let tids: Vec<Tid> = t
            .scan(stats)
            .filter(|(_, row)| pred.eval(row))
            .map(|(tid, _)| tid)
            .collect();
        Ok(KeysetCursor {
            table: table.to_string(),
            tids,
            arity: t.schema().arity(),
        })
    }

    /// Rows in the keyset.
    pub fn len(&self) -> usize {
        self.tids.len()
    }

    /// Is the keyset empty?
    pub fn is_empty(&self) -> bool {
        self.tids.is_empty()
    }

    /// Codes per row in fetched data.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Scan the keyset, applying `residual` at the server before shipping.
    /// Appends matching rows (flat) to `out`; returns the match count.
    ///
    /// Charges one page read per distinct page in the keyset and one scanned
    /// row per keyset entry; only residual matches pay wire costs.
    pub fn scan_filtered(
        &self,
        db: &Database,
        residual: &Pred,
        out: &mut Vec<Code>,
    ) -> DbResult<usize> {
        let table = db.table(&self.table)?;
        let stats = db.stats();
        let per_page = Page::capacity_rows(self.arity) as u64;
        let mut batch = WireBatch::new();
        let mut last_page = u64::MAX;
        let mut shipped = 0;
        for &tid in &self.tids {
            let page = tid.0 / per_page;
            if page != last_page {
                stats.add_pages_read(1);
                last_page = page;
            }
            stats.add_rows_scanned(1);
            let row = table.row_by_tid_unaccounted(tid)?;
            if residual.eval(row) {
                batch.push(row);
                if batch.rows() >= DEFAULT_BATCH_ROWS {
                    shipped += batch.transmit(self.arity, stats, out);
                }
            }
        }
        shipped += batch.transmit(self.arity, stats, out);
        Ok(shipped)
    }
}

/// Forward-only filtered cursor over caller-supplied TID ranges (the
/// `TABLESAMPLE SYSTEM` analogue used by the middleware's sampled counting
/// mode). Ranges are half-open `[start, end)` row-identifier intervals and
/// must be sorted and disjoint so the scan touches each page at most once,
/// exactly like the keyset cursor's idealized access.
///
/// Charges one page read per distinct page entered and one scanned row per
/// row *inside* the ranges; rows outside the sample are never read and
/// never charged — the server-side saving the sampled access path exists
/// to harvest.
pub struct BlockCursor<'a> {
    table: &'a Table,
    pred: Pred,
    arity: usize,
    batch_rows: usize,
    batch: WireBatch,
    stats: &'a DbStats,
    /// Sorted, disjoint half-open `[start, end)` TID ranges to scan.
    ranges: Vec<(u64, u64)>,
    /// Index of the range currently being scanned.
    range_idx: usize,
    /// Next TID to read within the current range.
    next_tid: u64,
    /// Last page charged (page-granular accounting, like the keyset scan).
    last_page: u64,
    exhausted: bool,
}

impl<'a> BlockCursor<'a> {
    pub(crate) fn new(
        table: &'a Table,
        pred: Pred,
        batch_rows: usize,
        mut ranges: Vec<(u64, u64)>,
        stats: &'a DbStats,
    ) -> Self {
        ranges.sort_unstable();
        ranges.retain(|&(start, end)| start < end);
        let nrows = table.nrows();
        for r in &mut ranges {
            r.1 = r.1.min(nrows);
        }
        ranges.retain(|&(start, end)| start < end);
        stats.add_seq_scan();
        let next_tid = ranges.first().map_or(0, |&(start, _)| start);
        BlockCursor {
            table,
            pred,
            arity: table.schema().arity(),
            batch_rows: batch_rows.max(1),
            batch: WireBatch::new(),
            stats,
            exhausted: ranges.is_empty(),
            ranges,
            range_idx: 0,
            next_tid,
            last_page: u64::MAX,
        }
    }

    /// Number of codes per row in fetched data.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Total rows covered by the (clamped) ranges — the rows the cursor
    /// will scan, independent of how many match the filter.
    pub fn covered_rows(&self) -> u64 {
        self.ranges
            .iter()
            .fold(0u64, |a, &(s, e)| a.saturating_add(e - s))
    }

    /// Pull the next in-range TID, or `None` when the ranges are drained.
    fn next_in_range(&mut self) -> Option<Tid> {
        loop {
            let &(_, end) = self.ranges.get(self.range_idx)?;
            if self.next_tid < end {
                let tid = Tid(self.next_tid);
                self.next_tid += 1;
                return Some(tid);
            }
            self.range_idx += 1;
            if let Some(&(start, _)) = self.ranges.get(self.range_idx) {
                self.next_tid = start;
            }
        }
    }

    /// Fetch the next batch of matching rows, appending their codes (flat)
    /// to `out`. Returns the rows fetched; `0` means end of scan.
    pub fn fetch(&mut self, out: &mut Vec<Code>) -> DbResult<usize> {
        if self.exhausted {
            return Ok(0);
        }
        debug_assert!(self.batch.is_empty());
        let per_page = Page::capacity_rows(self.arity) as u64;
        while self.batch.rows() < self.batch_rows {
            match self.next_in_range() {
                Some(tid) => {
                    let page = tid.0 / per_page;
                    if page != self.last_page {
                        self.stats.add_pages_read(1);
                        self.last_page = page;
                    }
                    self.stats.add_rows_scanned(1);
                    let row = self.table.row_by_tid_unaccounted(tid)?;
                    if self.pred.eval(row) {
                        self.batch.push(row);
                    }
                }
                None => {
                    self.exhausted = true;
                    break;
                }
            }
        }
        Ok(self.batch.transmit(self.arity, self.stats, out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Schema;

    fn db() -> Database {
        let mut db = Database::new();
        db.create_table("t", Schema::from_pairs(&[("a", 4), ("class", 2)]))
            .unwrap();
        for i in 0..1000u16 {
            db.insert("t", &[i % 4, (i / 4) % 2]).unwrap();
        }
        db
    }

    #[test]
    fn server_cursor_filters_and_batches() {
        let db = db();
        let mut cur = db
            .open_cursor("t", Pred::Eq { col: 0, value: 3 }, 100)
            .unwrap();
        let mut out = Vec::new();
        let mut batches = 0;
        loop {
            let n = cur.fetch(&mut out);
            if n == 0 {
                break;
            }
            assert!(n <= 100);
            batches += 1;
        }
        assert_eq!(out.len() / 2, 250);
        assert_eq!(batches, 3, "250 matches / 100-row batches");
        assert!(out.chunks(2).all(|r| r[0] == 3));
        let snap = db.stats().snapshot();
        assert_eq!(snap.rows_scanned, 1000, "server scans everything");
        assert_eq!(snap.rows_shipped, 250, "wire only carries matches");
    }

    #[test]
    fn fetch_after_exhaustion_returns_zero() {
        let db = db();
        let mut cur = db.open_cursor("t", Pred::False, 64).unwrap();
        let mut out = Vec::new();
        assert_eq!(cur.fetch(&mut out), 0);
        assert_eq!(cur.fetch(&mut out), 0);
        assert!(out.is_empty());
    }

    #[test]
    fn fetch_all_drains() {
        let db = db();
        let mut cur = db.open_cursor("t", Pred::True, 128).unwrap();
        let mut out = Vec::new();
        assert_eq!(cur.fetch_all(&mut out), 1000);
        assert_eq!(out.len(), 2000);
    }

    #[test]
    fn keyset_cursor_residual_filter() {
        let db = db();
        let keyset = db
            .open_keyset_cursor("t", &Pred::Eq { col: 0, value: 1 })
            .unwrap();
        assert_eq!(keyset.len(), 250);

        let before = db.stats().snapshot();
        let mut out = Vec::new();
        let n = keyset
            .scan_filtered(&db, &Pred::Eq { col: 1, value: 0 }, &mut out)
            .unwrap();
        let delta = db.stats().snapshot() - before;
        assert_eq!(n, 125);
        assert_eq!(delta.rows_scanned, 250, "reads whole keyset");
        assert_eq!(delta.rows_shipped, 125, "ships only residual matches");
        assert!(out.chunks(2).all(|r| r[0] == 1 && r[1] == 0));
    }

    #[test]
    fn block_cursor_reads_only_the_ranges() {
        // Multi-page table: 10 000 arity-2 rows span five 2048-row pages.
        let mut db = Database::new();
        db.create_table("big", Schema::from_pairs(&[("a", 4), ("class", 2)]))
            .unwrap();
        for i in 0..10_000u32 {
            db.insert("big", &[(i % 4) as u16, (i % 2) as u16]).unwrap();
        }
        let npages = db.table("big").unwrap().npages();
        assert!(npages >= 5, "fixture must span several pages");

        let before = db.stats().snapshot();
        // Two ranges inside pages 0 and 2 — pages 1, 3, 4 stay untouched.
        let mut cur = db
            .open_block_cursor("big", Pred::True, 512, vec![(0, 1000), (4200, 5000)])
            .unwrap();
        assert_eq!(cur.covered_rows(), 1800);
        let mut out = Vec::new();
        let mut total = 0;
        loop {
            let n = cur.fetch(&mut out).unwrap();
            if n == 0 {
                break;
            }
            total += n;
        }
        let delta = db.stats().snapshot() - before;
        assert_eq!(total, 1800);
        assert_eq!(delta.rows_scanned, 1800, "out-of-range rows cost nothing");
        assert_eq!(delta.pages_read, 2, "only the pages under the ranges");
        assert_eq!(delta.rows_shipped, 1800);
    }

    #[test]
    fn block_cursor_applies_filter_and_clamps_ranges() {
        let db = db();
        // Unsorted, overlapping-with-end, and past-the-end ranges: the
        // cursor sorts and clamps. a==3 matches every 4th row.
        let mut cur = db
            .open_block_cursor(
                "t",
                Pred::Eq { col: 0, value: 3 },
                64,
                vec![(800, 2000), (0, 400)],
            )
            .unwrap();
        assert_eq!(cur.covered_rows(), 600);
        let mut out = Vec::new();
        let mut total = 0;
        loop {
            let n = cur.fetch(&mut out).unwrap();
            if n == 0 {
                break;
            }
            total += n;
        }
        assert_eq!(total, 150, "a quarter of the 600 covered rows match");
        assert!(out.chunks(2).all(|r| r[0] == 3));
    }

    #[test]
    fn block_cursor_empty_ranges_fetch_zero() {
        let db = db();
        let mut cur = db.open_block_cursor("t", Pred::True, 64, vec![]).unwrap();
        let mut out = Vec::new();
        assert_eq!(cur.fetch(&mut out).unwrap(), 0);
        assert_eq!(cur.fetch(&mut out).unwrap(), 0);
        let mut degenerate = db
            .open_block_cursor("t", Pred::True, 64, vec![(50, 50), (9999, 10_000)])
            .unwrap();
        assert_eq!(degenerate.covered_rows(), 0);
        assert_eq!(degenerate.fetch(&mut out).unwrap(), 0);
        assert!(out.is_empty());
    }

    #[test]
    fn block_cursor_full_range_matches_server_cursor() {
        let db1 = db();
        let mut server_out = Vec::new();
        db1.open_cursor("t", Pred::Eq { col: 1, value: 1 }, 100)
            .unwrap()
            .fetch_all(&mut server_out);

        let db2 = db();
        let nrows = db2.table("t").unwrap().nrows();
        let mut block_out = Vec::new();
        let mut cur = db2
            .open_block_cursor("t", Pred::Eq { col: 1, value: 1 }, 100, vec![(0, nrows)])
            .unwrap();
        loop {
            if cur.fetch(&mut block_out).unwrap() == 0 {
                break;
            }
        }
        assert_eq!(server_out, block_out, "full-range block scan ≡ seq scan");
    }

    #[test]
    fn keyset_scan_touches_each_page_once() {
        let db = db();
        let keyset = db.open_keyset_cursor("t", &Pred::True).unwrap();
        let before = db.stats().snapshot();
        let mut out = Vec::new();
        keyset.scan_filtered(&db, &Pred::True, &mut out).unwrap();
        let delta = db.stats().snapshot() - before;
        assert_eq!(
            delta.pages_read,
            db.table("t").unwrap().npages(),
            "sorted keyset ⇒ sequential page access"
        );
    }
}
