//! Server-side cursors.
//!
//! [`ServerCursor`] is the forward-only filtered cursor the middleware uses
//! for its scan-based counting: the server evaluates the pushed-down filter
//! expression and ships only matching rows over the simulated wire (§4.3.1).
//!
//! [`KeysetCursor`] is access path (c) of §4.3.3: a snapshot of qualifying
//! TIDs taken at open time, over which later scans can run with an extra
//! *residual* filter applied server-side before shipping ("a stored
//! procedure that applies the filters on the results obtained by the cursor
//! before the results are returned").

use crate::database::Database;
use crate::error::DbResult;
use crate::expr::Pred;
use crate::page::Page;
use crate::stats::DbStats;
use crate::storage::{ScanIter, Table};
use crate::types::{Code, Tid};
use crate::wire::{WireBatch, DEFAULT_BATCH_ROWS};

/// Forward-only cursor with server-side filtering and batched wire fetches.
pub struct ServerCursor<'a> {
    iter: ScanIter<'a>,
    pred: Pred,
    arity: usize,
    batch_rows: usize,
    batch: WireBatch,
    stats: &'a DbStats,
    exhausted: bool,
}

impl<'a> ServerCursor<'a> {
    pub(crate) fn new(table: &'a Table, pred: Pred, batch_rows: usize, stats: &'a DbStats) -> Self {
        ServerCursor {
            iter: table.scan(stats),
            pred,
            arity: table.schema().arity(),
            batch_rows: batch_rows.max(1),
            batch: WireBatch::new(),
            stats,
            exhausted: false,
        }
    }

    /// Number of codes per row in fetched data.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Fetch the next batch of matching rows, appending their codes (flat)
    /// to `out`. Returns the number of rows fetched; `0` means end of scan.
    pub fn fetch(&mut self, out: &mut Vec<Code>) -> usize {
        if self.exhausted {
            return 0;
        }
        debug_assert!(self.batch.is_empty());
        while self.batch.rows() < self.batch_rows {
            match self.iter.next() {
                Some((_, row)) => {
                    if self.pred.eval(row) {
                        self.batch.push(row);
                    }
                }
                None => {
                    self.exhausted = true;
                    break;
                }
            }
        }
        self.batch.transmit(self.arity, self.stats, out)
    }

    /// Drain the whole cursor into a flat vector. Returns total rows.
    pub fn fetch_all(&mut self, out: &mut Vec<Code>) -> usize {
        let mut total = 0;
        loop {
            let n = self.fetch(out);
            if n == 0 {
                return total;
            }
            total += n;
        }
    }
}

/// A snapshot of qualifying TIDs with server-side residual filtering on
/// re-scan. TIDs are kept sorted so a keyset scan touches each page once —
/// the "idealized" access the §5.2.5 experiment grants this technique.
pub struct KeysetCursor {
    table: String,
    tids: Vec<Tid>,
    arity: usize,
}

impl KeysetCursor {
    pub(crate) fn open(db: &Database, table: &str, pred: &Pred) -> DbResult<Self> {
        let t = db.table(table)?;
        let stats = db.stats();
        stats.add_keyset_open();
        let tids: Vec<Tid> = t
            .scan(stats)
            .filter(|(_, row)| pred.eval(row))
            .map(|(tid, _)| tid)
            .collect();
        Ok(KeysetCursor {
            table: table.to_string(),
            tids,
            arity: t.schema().arity(),
        })
    }

    /// Rows in the keyset.
    pub fn len(&self) -> usize {
        self.tids.len()
    }

    /// Is the keyset empty?
    pub fn is_empty(&self) -> bool {
        self.tids.is_empty()
    }

    /// Codes per row in fetched data.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Scan the keyset, applying `residual` at the server before shipping.
    /// Appends matching rows (flat) to `out`; returns the match count.
    ///
    /// Charges one page read per distinct page in the keyset and one scanned
    /// row per keyset entry; only residual matches pay wire costs.
    pub fn scan_filtered(
        &self,
        db: &Database,
        residual: &Pred,
        out: &mut Vec<Code>,
    ) -> DbResult<usize> {
        let table = db.table(&self.table)?;
        let stats = db.stats();
        let per_page = Page::capacity_rows(self.arity) as u64;
        let mut batch = WireBatch::new();
        let mut last_page = u64::MAX;
        let mut shipped = 0;
        for &tid in &self.tids {
            let page = tid.0 / per_page;
            if page != last_page {
                stats.add_pages_read(1);
                last_page = page;
            }
            stats.add_rows_scanned(1);
            let row = table.row_by_tid_unaccounted(tid)?;
            if residual.eval(row) {
                batch.push(row);
                if batch.rows() >= DEFAULT_BATCH_ROWS {
                    shipped += batch.transmit(self.arity, stats, out);
                }
            }
        }
        shipped += batch.transmit(self.arity, stats, out);
        Ok(shipped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Schema;

    fn db() -> Database {
        let mut db = Database::new();
        db.create_table("t", Schema::from_pairs(&[("a", 4), ("class", 2)]))
            .unwrap();
        for i in 0..1000u16 {
            db.insert("t", &[i % 4, (i / 4) % 2]).unwrap();
        }
        db
    }

    #[test]
    fn server_cursor_filters_and_batches() {
        let db = db();
        let mut cur = db
            .open_cursor("t", Pred::Eq { col: 0, value: 3 }, 100)
            .unwrap();
        let mut out = Vec::new();
        let mut batches = 0;
        loop {
            let n = cur.fetch(&mut out);
            if n == 0 {
                break;
            }
            assert!(n <= 100);
            batches += 1;
        }
        assert_eq!(out.len() / 2, 250);
        assert_eq!(batches, 3, "250 matches / 100-row batches");
        assert!(out.chunks(2).all(|r| r[0] == 3));
        let snap = db.stats().snapshot();
        assert_eq!(snap.rows_scanned, 1000, "server scans everything");
        assert_eq!(snap.rows_shipped, 250, "wire only carries matches");
    }

    #[test]
    fn fetch_after_exhaustion_returns_zero() {
        let db = db();
        let mut cur = db.open_cursor("t", Pred::False, 64).unwrap();
        let mut out = Vec::new();
        assert_eq!(cur.fetch(&mut out), 0);
        assert_eq!(cur.fetch(&mut out), 0);
        assert!(out.is_empty());
    }

    #[test]
    fn fetch_all_drains() {
        let db = db();
        let mut cur = db.open_cursor("t", Pred::True, 128).unwrap();
        let mut out = Vec::new();
        assert_eq!(cur.fetch_all(&mut out), 1000);
        assert_eq!(out.len(), 2000);
    }

    #[test]
    fn keyset_cursor_residual_filter() {
        let db = db();
        let keyset = db
            .open_keyset_cursor("t", &Pred::Eq { col: 0, value: 1 })
            .unwrap();
        assert_eq!(keyset.len(), 250);

        let before = db.stats().snapshot();
        let mut out = Vec::new();
        let n = keyset
            .scan_filtered(&db, &Pred::Eq { col: 1, value: 0 }, &mut out)
            .unwrap();
        let delta = db.stats().snapshot() - before;
        assert_eq!(n, 125);
        assert_eq!(delta.rows_scanned, 250, "reads whole keyset");
        assert_eq!(delta.rows_shipped, 125, "ships only residual matches");
        assert!(out.chunks(2).all(|r| r[0] == 1 && r[1] == 0));
    }

    #[test]
    fn keyset_scan_touches_each_page_once() {
        let db = db();
        let keyset = db.open_keyset_cursor("t", &Pred::True).unwrap();
        let before = db.stats().snapshot();
        let mut out = Vec::new();
        keyset.scan_filtered(&db, &Pred::True, &mut out).unwrap();
        let delta = db.stats().snapshot() - before;
        assert_eq!(
            delta.pages_read,
            db.table("t").unwrap().npages(),
            "sorted keyset ⇒ sequential page access"
        );
    }
}
