//! The database catalog and the server-side access paths.
//!
//! Besides ordinary tables and sequential scans, this module implements the
//! three auxiliary server-side structures the paper evaluates (and finds
//! unhelpful) in §4.3.3 / §5.2.5:
//!
//! * (a) **copy data to a new temp table** ([`Database::copy_to_temp`]),
//! * (b) **copy TIDs and make indexed access** ([`Database::create_tid_set`]
//!   plus [`Database::tid_scan`]),
//! * (c) **keyset cursor + stored-procedure filter** (see
//!   [`crate::cursor::KeysetCursor`]).

use crate::delta::{DeltaLog, DeltaSign, RowDelta};
use crate::error::{DbError, DbResult};
use crate::expr::Pred;
use crate::stats::DbStats;
use crate::storage::Table;
use crate::types::{Code, Schema, Tid};
use std::collections::HashMap;
use std::sync::Arc;

/// A named collection of tables with shared server statistics.
///
/// Every DML entry point ([`Database::insert`], [`Database::delete_where`],
/// [`Database::update_where`]) advances the mutated table's **epoch** and
/// invalidates TID sets materialized from it (their TIDs dangle after a
/// compacting delete and silently miss rows after an insert). Tables with an
/// enabled [`DeltaLog`] additionally capture each mutation as signed row
/// events for the middleware's incremental-maintenance path (DESIGN.md §15).
#[derive(Debug)]
pub struct Database {
    tables: HashMap<String, Table>,
    /// Server-side TID sets ("indexes built on the fly", §4.3.3b).
    tid_sets: HashMap<String, TidSet>,
    /// Per-table mutation counters; bumped by every DML call that changed
    /// at least one row. Absent means epoch 0.
    epochs: HashMap<String, u64>,
    /// Opt-in per-table delta logs (see [`crate::delta`]).
    delta_logs: HashMap<String, DeltaLog>,
    stats: Arc<DbStats>,
    temp_counter: u64,
}

/// A materialized set of row identifiers for some base table.
#[derive(Debug, Clone)]
pub struct TidSet {
    /// Table the TIDs refer to.
    pub base_table: String,
    /// The materialized row identifiers.
    pub tids: Vec<Tid>,
}

impl Default for Database {
    fn default() -> Self {
        Self::new()
    }
}

impl Database {
    /// An empty catalog with fresh statistics.
    pub fn new() -> Self {
        Database {
            tables: HashMap::new(),
            tid_sets: HashMap::new(),
            epochs: HashMap::new(),
            delta_logs: HashMap::new(),
            stats: Arc::new(DbStats::new()),
            temp_counter: 0,
        }
    }

    /// Shared statistics handle.
    pub fn stats(&self) -> &Arc<DbStats> {
        &self.stats
    }

    /// Create an empty table. Fails if the name is taken.
    pub fn create_table(&mut self, name: impl Into<String>, schema: Schema) -> DbResult<()> {
        let name = name.into();
        if self.tables.contains_key(&name) {
            return Err(DbError::DuplicateTable(name));
        }
        self.tables.insert(name, Table::new(schema));
        Ok(())
    }

    /// Register a fully built table (bulk-load path used by the generators).
    pub fn register_table(&mut self, name: impl Into<String>, table: Table) -> DbResult<()> {
        let name = name.into();
        if self.tables.contains_key(&name) {
            return Err(DbError::DuplicateTable(name));
        }
        self.tables.insert(name, table);
        Ok(())
    }

    /// Remove a table from the catalog.
    pub fn drop_table(&mut self, name: &str) -> DbResult<()> {
        self.tables
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| DbError::UnknownTable(name.to_string()))
    }

    /// Look up a table by name.
    pub fn table(&self, name: &str) -> DbResult<&Table> {
        self.tables
            .get(name)
            .ok_or_else(|| DbError::UnknownTable(name.to_string()))
    }

    /// Look up a table mutably.
    pub fn table_mut(&mut self, name: &str) -> DbResult<&mut Table> {
        self.tables
            .get_mut(name)
            .ok_or_else(|| DbError::UnknownTable(name.to_string()))
    }

    /// Names of all catalogued tables (unordered).
    pub fn table_names(&self) -> impl Iterator<Item = &str> {
        self.tables.keys().map(String::as_str)
    }

    /// Insert one validated row into a table. Advances the table's epoch
    /// and invalidates TID sets materialized from it (a cursor over a stale
    /// TID set would silently miss the new row).
    pub fn insert(&mut self, name: &str, row: &[Code]) -> DbResult<()> {
        self.tables
            .get_mut(name)
            .ok_or_else(|| DbError::UnknownTable(name.to_string()))?
            .insert(row)?;
        if let Some(log) = self.delta_logs.get_mut(name) {
            log.record(DeltaSign::Insert, row);
        }
        self.note_mutation(name);
        Ok(())
    }

    /// Delete every row of `name` matching `pred` (compacting the heap; see
    /// [`Table::delete_where`] for the I/O charged). Returns rows removed.
    /// If anything was removed the table's epoch advances and its TID sets
    /// are invalidated — surviving TIDs renumber under compaction.
    pub fn delete_where(&mut self, name: &str, pred: &Pred) -> DbResult<u64> {
        let stats = Arc::clone(&self.stats);
        let table = self
            .tables
            .get_mut(name)
            .ok_or_else(|| DbError::UnknownTable(name.to_string()))?;
        let removed = match self.delta_logs.get_mut(name) {
            Some(log) => {
                table.delete_where_with(pred, &stats, |row| log.record(DeltaSign::Delete, row))
            }
            None => table.delete_where(pred, &stats),
        };
        if removed > 0 {
            self.note_mutation(name);
        }
        Ok(removed)
    }

    /// Apply `(column, value)` assignments to every row of `name` matching
    /// `pred` (see [`Table::update_where`] for validation and I/O). Returns
    /// rows actually changed. A change advances the epoch, invalidates the
    /// table's TID sets, and — with a delta log enabled — records each
    /// changed row as a delete of the old image plus an insert of the new.
    pub fn update_where(
        &mut self,
        name: &str,
        pred: &Pred,
        assignments: &[(usize, Code)],
    ) -> DbResult<u64> {
        let stats = Arc::clone(&self.stats);
        let table = self
            .tables
            .get_mut(name)
            .ok_or_else(|| DbError::UnknownTable(name.to_string()))?;
        let changed = match self.delta_logs.get_mut(name) {
            Some(log) => table.update_where_with(pred, assignments, &stats, |old, new| {
                log.record(DeltaSign::Delete, old);
                log.record(DeltaSign::Insert, new);
            })?,
            None => table.update_where(pred, assignments, &stats)?,
        };
        if changed > 0 {
            self.note_mutation(name);
        }
        Ok(changed)
    }

    /// The table's current mutation epoch (0 for never-mutated tables, and
    /// for unknown names — callers that care resolve the table first).
    pub fn table_epoch(&self, name: &str) -> u64 {
        self.epochs.get(name).copied().unwrap_or(0)
    }

    /// Start capturing signed row events for `name` (idempotent). Events
    /// accumulate until [`Database::take_deltas`] drains them.
    pub fn enable_delta_log(&mut self, name: &str) -> DbResult<()> {
        if !self.tables.contains_key(name) {
            return Err(DbError::UnknownTable(name.to_string()));
        }
        self.delta_logs.entry(name.to_string()).or_default();
        Ok(())
    }

    /// Stop capturing events for `name`, discarding any undrained ones.
    pub fn disable_delta_log(&mut self, name: &str) {
        self.delta_logs.remove(name);
    }

    /// Number of undrained events in `name`'s delta log (0 if no log).
    pub fn delta_log_len(&self, name: &str) -> usize {
        self.delta_logs.get(name).map_or(0, DeltaLog::len)
    }

    /// Drain the accumulated signed row events for `name`, in sequence
    /// order. Empty if logging was never enabled.
    pub fn take_deltas(&mut self, name: &str) -> Vec<RowDelta> {
        self.delta_logs
            .get_mut(name)
            .map(DeltaLog::take)
            .unwrap_or_default()
    }

    /// Record that `name`'s contents changed: advance its epoch and drop
    /// TID sets materialized from it. TIDs are heap positions, so they
    /// dangle after a compacting delete and under-cover after an insert;
    /// invalidation makes the staleness loud (lookup errors) instead of
    /// silent (wrong rows).
    fn note_mutation(&mut self, name: &str) {
        *self.epochs.entry(name.to_string()).or_insert(0) += 1;
        self.tid_sets.retain(|_, set| set.base_table != name);
    }

    /// Open a forward-only filtered cursor on a table (the middleware's
    /// primary access path). `batch_rows` rows travel per simulated round
    /// trip.
    pub fn open_cursor(
        &self,
        table: &str,
        pred: Pred,
        batch_rows: usize,
    ) -> DbResult<crate::cursor::ServerCursor<'_>> {
        let t = self.table(table)?;
        Ok(crate::cursor::ServerCursor::new(
            t,
            pred,
            batch_rows,
            &self.stats,
        ))
    }

    /// Open a filtered cursor restricted to the given half-open `[start,
    /// end)` TID ranges — the `TABLESAMPLE SYSTEM` analogue behind the
    /// middleware's sampled counting mode (DESIGN.md §13). Rows outside the
    /// ranges are never read and never charged.
    pub fn open_block_cursor(
        &self,
        table: &str,
        pred: Pred,
        batch_rows: usize,
        ranges: Vec<(u64, u64)>,
    ) -> DbResult<crate::cursor::BlockCursor<'_>> {
        let t = self.table(table)?;
        Ok(crate::cursor::BlockCursor::new(
            t,
            pred,
            batch_rows,
            ranges,
            &self.stats,
        ))
    }

    /// Open a keyset cursor: snapshot the TIDs satisfying `pred` now, allow
    /// residual-filtered re-scans later (§4.3.3c). Charges a full scan.
    pub fn open_keyset_cursor(
        &self,
        table: &str,
        pred: &Pred,
    ) -> DbResult<crate::cursor::KeysetCursor> {
        crate::cursor::KeysetCursor::open(self, table, pred)
    }

    fn next_temp_name(&mut self, prefix: &str) -> String {
        self.temp_counter += 1;
        format!("#{prefix}_{}", self.temp_counter)
    }

    /// §4.3.3(a): copy the subset of `src` satisfying `pred` into a fresh
    /// temp table; returns its name. Charges a full scan of `src` plus page
    /// writes for the copy — the "unacceptably high overhead" the paper
    /// observes falls directly out of these counters.
    pub fn copy_to_temp(&mut self, src: &str, pred: &Pred) -> DbResult<String> {
        let name = self.next_temp_name("temp");
        let stats = Arc::clone(&self.stats);
        let source = self.table(src)?;
        let mut copy = Table::new(source.schema().clone());
        for (_, row) in source.scan(&stats) {
            if pred.eval(row) {
                copy.insert_unchecked(row);
            }
        }
        stats.add_pages_written(copy.npages());
        stats.add_temp_table();
        self.tables.insert(name.clone(), copy);
        Ok(name)
    }

    /// §4.3.3(b): materialize the TIDs of rows in `src` satisfying `pred`.
    /// Charges a full scan plus (cheap) writes for the TID list.
    pub fn create_tid_set(&mut self, src: &str, pred: &Pred) -> DbResult<String> {
        let name = self.next_temp_name("tids");
        let stats = Arc::clone(&self.stats);
        let source = self.table(src)?;
        let tids: Vec<Tid> = source
            .scan(&stats)
            .filter(|(_, row)| pred.eval(row))
            .map(|(tid, _)| tid)
            .collect();
        // TIDs are 8 bytes each; charge the pages the list occupies.
        let tid_pages = (tids.len() as u64 * 8).div_ceil(crate::page::PAGE_SIZE as u64);
        stats.add_pages_written(tid_pages.max(1));
        stats.add_temp_table();
        self.tid_sets.insert(
            name.clone(),
            TidSet {
                base_table: src.to_string(),
                tids,
            },
        );
        Ok(name)
    }

    /// Look up a materialized TID set by name.
    pub fn tid_set(&self, name: &str) -> DbResult<&TidSet> {
        self.tid_sets
            .get(name)
            .ok_or_else(|| DbError::UnknownTable(name.to_string()))
    }

    /// Remove a TID set.
    pub fn drop_tid_set(&mut self, name: &str) -> DbResult<()> {
        self.tid_sets
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| DbError::UnknownTable(name.to_string()))
    }

    /// §4.3.3(b): fetch the rows of a TID set through random page reads
    /// ("join between T and the TID table"), applying a residual predicate,
    /// and return the matches as a flat code vector together with the match
    /// count. The per-row random read is what makes this path lose to a
    /// filtered sequential scan unless the TID set is very small.
    pub fn tid_scan(&self, tid_set: &str, residual: &Pred, out: &mut Vec<Code>) -> DbResult<usize> {
        let set = self.tid_set(tid_set)?;
        let base = self.table(&set.base_table)?;
        let arity = base.schema().arity();
        let mut matched = 0;
        for &tid in &set.tids {
            let row = base.fetch_by_tid(tid, &self.stats)?;
            if residual.eval(row) {
                out.reserve(arity);
                out.extend_from_slice(row);
                matched += 1;
            }
        }
        Ok(matched)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db_with_data() -> Database {
        let mut db = Database::new();
        db.create_table("t", Schema::from_pairs(&[("a", 4), ("class", 2)]))
            .unwrap();
        for i in 0..100u16 {
            db.insert("t", &[i % 4, i % 2]).unwrap();
        }
        db
    }

    #[test]
    fn catalog_crud() {
        let mut db = db_with_data();
        assert!(db.table("t").is_ok());
        assert!(matches!(db.table("nope"), Err(DbError::UnknownTable(_))));
        assert!(matches!(
            db.create_table("t", Schema::from_pairs(&[("x", 2)])),
            Err(DbError::DuplicateTable(_))
        ));
        db.drop_table("t").unwrap();
        assert!(db.table("t").is_err());
    }

    #[test]
    fn copy_to_temp_filters_and_charges() {
        let mut db = db_with_data();
        let before = db.stats().snapshot();
        let temp = db
            .copy_to_temp("t", &Pred::Eq { col: 0, value: 1 })
            .unwrap();
        let delta = db.stats().snapshot() - before;
        assert_eq!(db.table(&temp).unwrap().nrows(), 25);
        assert_eq!(delta.rows_scanned, 100, "full source scan paid");
        assert!(delta.pages_written >= 1, "copy pays writes");
        assert_eq!(delta.temp_tables, 1);
    }

    #[test]
    fn tid_set_and_scan() {
        let mut db = db_with_data();
        let tids = db
            .create_tid_set("t", &Pred::Eq { col: 0, value: 2 })
            .unwrap();
        assert_eq!(db.tid_set(&tids).unwrap().tids.len(), 25);

        let before = db.stats().snapshot();
        let mut out = Vec::new();
        let n = db
            .tid_scan(&tids, &Pred::Eq { col: 1, value: 0 }, &mut out)
            .unwrap();
        let delta = db.stats().snapshot() - before;
        // a=2 rows have i%4==2, i even → class=i%2=0 always
        assert_eq!(n, 25);
        assert_eq!(out.len(), 50);
        assert_eq!(delta.tid_fetches, 25, "one random fetch per TID");
        db.drop_tid_set(&tids).unwrap();
        assert!(db.tid_set(&tids).is_err());
    }

    #[test]
    fn temp_names_are_unique() {
        let mut db = db_with_data();
        let a = db.copy_to_temp("t", &Pred::True).unwrap();
        let b = db.copy_to_temp("t", &Pred::True).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn insert_invalidates_materialized_tid_sets() {
        // Regression: insert used to leave TID sets in place, so a cursor
        // over one silently missed the new rows.
        let mut db = db_with_data();
        let tids = db
            .create_tid_set("t", &Pred::Eq { col: 0, value: 2 })
            .unwrap();
        assert!(db.tid_set(&tids).is_ok());
        db.insert("t", &[2, 0]).unwrap();
        assert!(
            db.tid_set(&tids).is_err(),
            "mutation must invalidate TID sets over the base table"
        );
    }

    #[test]
    fn delete_and_update_invalidate_tid_sets_only_on_change() {
        let mut db = db_with_data();
        let tids = db.create_tid_set("t", &Pred::True).unwrap();
        db.create_table("u", Schema::from_pairs(&[("x", 2)]))
            .unwrap();
        db.insert("u", &[1]).unwrap();
        assert!(
            db.tid_set(&tids).is_ok(),
            "mutating another table keeps t's TID sets"
        );
        assert_eq!(db.update_where("t", &Pred::False, &[(1, 0)]).unwrap(), 0);
        assert_eq!(db.delete_where("t", &Pred::False).unwrap(), 0);
        assert!(db.tid_set(&tids).is_ok(), "no-op DML keeps TID sets");
        assert!(
            db.delete_where("t", &Pred::Eq { col: 0, value: 1 })
                .unwrap()
                > 0
        );
        assert!(db.tid_set(&tids).is_err(), "real delete invalidates");
    }

    #[test]
    fn epochs_advance_per_mutation_and_per_table() {
        let mut db = db_with_data();
        let e0 = db.table_epoch("t");
        db.insert("t", &[0, 0]).unwrap();
        assert_eq!(db.table_epoch("t"), e0 + 1);
        db.delete_where("t", &Pred::Eq { col: 0, value: 0 })
            .unwrap();
        assert_eq!(db.table_epoch("t"), e0 + 2);
        assert_eq!(
            db.update_where("t", &Pred::False, &[(1, 0)]).unwrap(),
            0,
            "predicate matches nothing"
        );
        assert_eq!(db.table_epoch("t"), e0 + 2, "no-op DML keeps the epoch");
        assert_eq!(db.table_epoch("untouched"), 0);
    }

    #[test]
    fn delta_log_captures_signed_events_in_sequence() {
        use crate::delta::DeltaSign;
        let mut db = db_with_data();
        assert!(db.enable_delta_log("missing").is_err());
        db.enable_delta_log("t").unwrap();
        db.insert("t", &[3, 1]).unwrap();
        let changed = db
            .update_where("t", &Pred::Eq { col: 0, value: 3 }, &[(1, 0)])
            .unwrap();
        let removed = db
            .delete_where("t", &Pred::Eq { col: 0, value: 3 })
            .unwrap();
        let events = db.take_deltas("t");
        assert_eq!(events[0].sign, DeltaSign::Insert);
        assert_eq!(events[0].row, vec![3, 1]);
        let deletes = events
            .iter()
            .filter(|e| e.sign == DeltaSign::Delete)
            .count() as u64;
        let inserts = events
            .iter()
            .filter(|e| e.sign == DeltaSign::Insert)
            .count() as u64;
        // 1 raw insert + one delete/insert pair per changed row + one
        // delete per removed row.
        assert_eq!(inserts, 1 + changed);
        assert_eq!(deletes, changed + removed);
        assert!(events.windows(2).all(|w| w[0].seq < w[1].seq));
        assert_eq!(db.delta_log_len("t"), 0, "take drains");
        // Events without logging enabled: none.
        db.disable_delta_log("t");
        db.insert("t", &[0, 0]).unwrap();
        assert!(db.take_deltas("t").is_empty());
    }

    #[test]
    fn delta_replay_reconstructs_final_table_counts() {
        use crate::delta::DeltaSign;
        use std::collections::HashMap as Map;
        let mut db = db_with_data();
        db.enable_delta_log("t").unwrap();
        // Multiset of rows before mutations.
        let mut counts: Map<Vec<Code>, i64> = Map::new();
        for row in db.table("t").unwrap().rows_unaccounted() {
            *counts.entry(row.to_vec()).or_insert(0) += 1;
        }
        db.insert("t", &[1, 1]).unwrap();
        db.update_where("t", &Pred::Eq { col: 0, value: 2 }, &[(1, 1)])
            .unwrap();
        db.delete_where("t", &Pred::Eq { col: 0, value: 0 })
            .unwrap();
        for ev in db.take_deltas("t") {
            let slot = counts.entry(ev.row.clone()).or_insert(0);
            match ev.sign {
                DeltaSign::Insert => *slot += 1,
                DeltaSign::Delete => *slot -= 1,
            }
        }
        let mut actual: Map<Vec<Code>, i64> = Map::new();
        for row in db.table("t").unwrap().rows_unaccounted() {
            *actual.entry(row.to_vec()).or_insert(0) += 1;
        }
        counts.retain(|_, n| *n != 0);
        assert_eq!(counts, actual, "replayed deltas must equal a fresh scan");
    }
}
