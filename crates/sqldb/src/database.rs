//! The database catalog and the server-side access paths.
//!
//! Besides ordinary tables and sequential scans, this module implements the
//! three auxiliary server-side structures the paper evaluates (and finds
//! unhelpful) in §4.3.3 / §5.2.5:
//!
//! * (a) **copy data to a new temp table** ([`Database::copy_to_temp`]),
//! * (b) **copy TIDs and make indexed access** ([`Database::create_tid_set`]
//!   plus [`Database::tid_scan`]),
//! * (c) **keyset cursor + stored-procedure filter** (see
//!   [`crate::cursor::KeysetCursor`]).

use crate::error::{DbError, DbResult};
use crate::expr::Pred;
use crate::stats::DbStats;
use crate::storage::Table;
use crate::types::{Code, Schema, Tid};
use std::collections::HashMap;
use std::sync::Arc;

/// A named collection of tables with shared server statistics.
#[derive(Debug)]
pub struct Database {
    tables: HashMap<String, Table>,
    /// Server-side TID sets ("indexes built on the fly", §4.3.3b).
    tid_sets: HashMap<String, TidSet>,
    stats: Arc<DbStats>,
    temp_counter: u64,
}

/// A materialized set of row identifiers for some base table.
#[derive(Debug, Clone)]
pub struct TidSet {
    /// Table the TIDs refer to.
    pub base_table: String,
    /// The materialized row identifiers.
    pub tids: Vec<Tid>,
}

impl Default for Database {
    fn default() -> Self {
        Self::new()
    }
}

impl Database {
    /// An empty catalog with fresh statistics.
    pub fn new() -> Self {
        Database {
            tables: HashMap::new(),
            tid_sets: HashMap::new(),
            stats: Arc::new(DbStats::new()),
            temp_counter: 0,
        }
    }

    /// Shared statistics handle.
    pub fn stats(&self) -> &Arc<DbStats> {
        &self.stats
    }

    /// Create an empty table. Fails if the name is taken.
    pub fn create_table(&mut self, name: impl Into<String>, schema: Schema) -> DbResult<()> {
        let name = name.into();
        if self.tables.contains_key(&name) {
            return Err(DbError::DuplicateTable(name));
        }
        self.tables.insert(name, Table::new(schema));
        Ok(())
    }

    /// Register a fully built table (bulk-load path used by the generators).
    pub fn register_table(&mut self, name: impl Into<String>, table: Table) -> DbResult<()> {
        let name = name.into();
        if self.tables.contains_key(&name) {
            return Err(DbError::DuplicateTable(name));
        }
        self.tables.insert(name, table);
        Ok(())
    }

    /// Remove a table from the catalog.
    pub fn drop_table(&mut self, name: &str) -> DbResult<()> {
        self.tables
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| DbError::UnknownTable(name.to_string()))
    }

    /// Look up a table by name.
    pub fn table(&self, name: &str) -> DbResult<&Table> {
        self.tables
            .get(name)
            .ok_or_else(|| DbError::UnknownTable(name.to_string()))
    }

    /// Look up a table mutably.
    pub fn table_mut(&mut self, name: &str) -> DbResult<&mut Table> {
        self.tables
            .get_mut(name)
            .ok_or_else(|| DbError::UnknownTable(name.to_string()))
    }

    /// Names of all catalogued tables (unordered).
    pub fn table_names(&self) -> impl Iterator<Item = &str> {
        self.tables.keys().map(String::as_str)
    }

    /// Insert one validated row into a table.
    pub fn insert(&mut self, name: &str, row: &[Code]) -> DbResult<()> {
        self.tables
            .get_mut(name)
            .ok_or_else(|| DbError::UnknownTable(name.to_string()))?
            .insert(row)
    }

    /// Open a forward-only filtered cursor on a table (the middleware's
    /// primary access path). `batch_rows` rows travel per simulated round
    /// trip.
    pub fn open_cursor(
        &self,
        table: &str,
        pred: Pred,
        batch_rows: usize,
    ) -> DbResult<crate::cursor::ServerCursor<'_>> {
        let t = self.table(table)?;
        Ok(crate::cursor::ServerCursor::new(
            t,
            pred,
            batch_rows,
            &self.stats,
        ))
    }

    /// Open a filtered cursor restricted to the given half-open `[start,
    /// end)` TID ranges — the `TABLESAMPLE SYSTEM` analogue behind the
    /// middleware's sampled counting mode (DESIGN.md §13). Rows outside the
    /// ranges are never read and never charged.
    pub fn open_block_cursor(
        &self,
        table: &str,
        pred: Pred,
        batch_rows: usize,
        ranges: Vec<(u64, u64)>,
    ) -> DbResult<crate::cursor::BlockCursor<'_>> {
        let t = self.table(table)?;
        Ok(crate::cursor::BlockCursor::new(
            t,
            pred,
            batch_rows,
            ranges,
            &self.stats,
        ))
    }

    /// Open a keyset cursor: snapshot the TIDs satisfying `pred` now, allow
    /// residual-filtered re-scans later (§4.3.3c). Charges a full scan.
    pub fn open_keyset_cursor(
        &self,
        table: &str,
        pred: &Pred,
    ) -> DbResult<crate::cursor::KeysetCursor> {
        crate::cursor::KeysetCursor::open(self, table, pred)
    }

    fn next_temp_name(&mut self, prefix: &str) -> String {
        self.temp_counter += 1;
        format!("#{prefix}_{}", self.temp_counter)
    }

    /// §4.3.3(a): copy the subset of `src` satisfying `pred` into a fresh
    /// temp table; returns its name. Charges a full scan of `src` plus page
    /// writes for the copy — the "unacceptably high overhead" the paper
    /// observes falls directly out of these counters.
    pub fn copy_to_temp(&mut self, src: &str, pred: &Pred) -> DbResult<String> {
        let name = self.next_temp_name("temp");
        let stats = Arc::clone(&self.stats);
        let source = self.table(src)?;
        let mut copy = Table::new(source.schema().clone());
        for (_, row) in source.scan(&stats) {
            if pred.eval(row) {
                copy.insert_unchecked(row);
            }
        }
        stats.add_pages_written(copy.npages());
        stats.add_temp_table();
        self.tables.insert(name.clone(), copy);
        Ok(name)
    }

    /// §4.3.3(b): materialize the TIDs of rows in `src` satisfying `pred`.
    /// Charges a full scan plus (cheap) writes for the TID list.
    pub fn create_tid_set(&mut self, src: &str, pred: &Pred) -> DbResult<String> {
        let name = self.next_temp_name("tids");
        let stats = Arc::clone(&self.stats);
        let source = self.table(src)?;
        let tids: Vec<Tid> = source
            .scan(&stats)
            .filter(|(_, row)| pred.eval(row))
            .map(|(tid, _)| tid)
            .collect();
        // TIDs are 8 bytes each; charge the pages the list occupies.
        let tid_pages = (tids.len() as u64 * 8).div_ceil(crate::page::PAGE_SIZE as u64);
        stats.add_pages_written(tid_pages.max(1));
        stats.add_temp_table();
        self.tid_sets.insert(
            name.clone(),
            TidSet {
                base_table: src.to_string(),
                tids,
            },
        );
        Ok(name)
    }

    /// Look up a materialized TID set by name.
    pub fn tid_set(&self, name: &str) -> DbResult<&TidSet> {
        self.tid_sets
            .get(name)
            .ok_or_else(|| DbError::UnknownTable(name.to_string()))
    }

    /// Remove a TID set.
    pub fn drop_tid_set(&mut self, name: &str) -> DbResult<()> {
        self.tid_sets
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| DbError::UnknownTable(name.to_string()))
    }

    /// §4.3.3(b): fetch the rows of a TID set through random page reads
    /// ("join between T and the TID table"), applying a residual predicate,
    /// and return the matches as a flat code vector together with the match
    /// count. The per-row random read is what makes this path lose to a
    /// filtered sequential scan unless the TID set is very small.
    pub fn tid_scan(&self, tid_set: &str, residual: &Pred, out: &mut Vec<Code>) -> DbResult<usize> {
        let set = self.tid_set(tid_set)?;
        let base = self.table(&set.base_table)?;
        let arity = base.schema().arity();
        let mut matched = 0;
        for &tid in &set.tids {
            let row = base.fetch_by_tid(tid, &self.stats)?;
            if residual.eval(row) {
                out.reserve(arity);
                out.extend_from_slice(row);
                matched += 1;
            }
        }
        Ok(matched)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db_with_data() -> Database {
        let mut db = Database::new();
        db.create_table("t", Schema::from_pairs(&[("a", 4), ("class", 2)]))
            .unwrap();
        for i in 0..100u16 {
            db.insert("t", &[i % 4, i % 2]).unwrap();
        }
        db
    }

    #[test]
    fn catalog_crud() {
        let mut db = db_with_data();
        assert!(db.table("t").is_ok());
        assert!(matches!(db.table("nope"), Err(DbError::UnknownTable(_))));
        assert!(matches!(
            db.create_table("t", Schema::from_pairs(&[("x", 2)])),
            Err(DbError::DuplicateTable(_))
        ));
        db.drop_table("t").unwrap();
        assert!(db.table("t").is_err());
    }

    #[test]
    fn copy_to_temp_filters_and_charges() {
        let mut db = db_with_data();
        let before = db.stats().snapshot();
        let temp = db
            .copy_to_temp("t", &Pred::Eq { col: 0, value: 1 })
            .unwrap();
        let delta = db.stats().snapshot() - before;
        assert_eq!(db.table(&temp).unwrap().nrows(), 25);
        assert_eq!(delta.rows_scanned, 100, "full source scan paid");
        assert!(delta.pages_written >= 1, "copy pays writes");
        assert_eq!(delta.temp_tables, 1);
    }

    #[test]
    fn tid_set_and_scan() {
        let mut db = db_with_data();
        let tids = db
            .create_tid_set("t", &Pred::Eq { col: 0, value: 2 })
            .unwrap();
        assert_eq!(db.tid_set(&tids).unwrap().tids.len(), 25);

        let before = db.stats().snapshot();
        let mut out = Vec::new();
        let n = db
            .tid_scan(&tids, &Pred::Eq { col: 1, value: 0 }, &mut out)
            .unwrap();
        let delta = db.stats().snapshot() - before;
        // a=2 rows have i%4==2, i even → class=i%2=0 always
        assert_eq!(n, 25);
        assert_eq!(out.len(), 50);
        assert_eq!(delta.tid_fetches, 25, "one random fetch per TID");
        db.drop_tid_set(&tids).unwrap();
        assert!(db.tid_set(&tids).is_err());
    }

    #[test]
    fn temp_names_are_unique() {
        let mut db = db_with_data();
        let a = db.copy_to_temp("t", &Pred::True).unwrap();
        let b = db.copy_to_temp("t", &Pred::True).unwrap();
        assert_ne!(a, b);
    }
}
