//! Error types for the embedded relational backend.

use std::fmt;

/// Errors produced by the storage engine, SQL layer, and cursor machinery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DbError {
    /// Referenced table does not exist in the catalog.
    UnknownTable(String),
    /// Referenced column does not exist in the table schema.
    UnknownColumn(String),
    /// A table with this name already exists.
    DuplicateTable(String),
    /// A value code is outside the declared cardinality of its column.
    ValueOutOfRange {
        /// Offending column's name.
        column: String,
        /// The rejected code.
        value: u16,
        /// The column's declared cardinality.
        cardinality: u16,
    },
    /// A row had the wrong number of columns for the schema.
    ArityMismatch {
        /// Columns the schema declares.
        expected: usize,
        /// Columns the row supplied.
        got: usize,
    },
    /// SQL text failed to lex or parse.
    Parse {
        /// What went wrong.
        message: String,
        /// Byte offset in the input.
        position: usize,
    },
    /// A query referenced a feature the executor does not support.
    Unsupported(String),
    /// The schemas of two UNION arms are incompatible.
    UnionSchemaMismatch {
        /// Index of the incompatible arm.
        arm: usize,
    },
    /// A cursor was used after being exhausted or closed.
    CursorClosed,
    /// An I/O error while spooling data (message only; `std::io::Error`
    /// is not `Clone`, so we keep the rendered text).
    Io(String),
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::UnknownTable(name) => write!(f, "unknown table `{name}`"),
            DbError::UnknownColumn(name) => write!(f, "unknown column `{name}`"),
            DbError::DuplicateTable(name) => write!(f, "table `{name}` already exists"),
            DbError::ValueOutOfRange {
                column,
                value,
                cardinality,
            } => write!(
                f,
                "value {value} out of range for column `{column}` (cardinality {cardinality})"
            ),
            DbError::ArityMismatch { expected, got } => {
                write!(f, "row has {got} columns, schema expects {expected}")
            }
            DbError::Parse { message, position } => {
                write!(f, "SQL parse error at byte {position}: {message}")
            }
            DbError::Unsupported(what) => write!(f, "unsupported SQL feature: {what}"),
            DbError::UnionSchemaMismatch { arm } => {
                write!(f, "UNION arm {arm} is not schema-compatible with arm 0")
            }
            DbError::CursorClosed => write!(f, "cursor is closed or exhausted"),
            DbError::Io(msg) => write!(f, "I/O error: {msg}"),
        }
    }
}

impl std::error::Error for DbError {}

impl From<std::io::Error> for DbError {
    fn from(e: std::io::Error) -> Self {
        DbError::Io(e.to_string())
    }
}

/// Convenience alias used across the crate.
pub type DbResult<T> = Result<T, DbError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = DbError::ValueOutOfRange {
            column: "age".into(),
            value: 9,
            cardinality: 4,
        };
        let s = e.to_string();
        assert!(s.contains("age") && s.contains('9') && s.contains('4'));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: DbError = io.into();
        assert!(matches!(e, DbError::Io(ref m) if m.contains("gone")));
    }

    #[test]
    fn parse_error_reports_position() {
        let e = DbError::Parse {
            message: "expected FROM".into(),
            position: 17,
        };
        assert!(e.to_string().contains("17"));
    }
}
