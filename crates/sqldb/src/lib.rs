//! # scaleclass-sqldb
//!
//! An embedded, page-based relational backend standing in for the
//! Microsoft SQL Server 7.0 instance used in *Scalable Classification over
//! SQL Databases* (Chaudhuri, Fayyad & Bernhardt, ICDE 1999).
//!
//! The crate provides every server-side capability the paper's middleware
//! exercises:
//!
//! * heap tables of fixed-width categorical rows on 8 KB pages
//!   ([`storage::Table`]),
//! * a SQL subset (SELECT / WHERE / GROUP BY / UNION ALL, plus DDL & DML)
//!   whose executor deliberately runs one scan per UNION arm, like the
//!   1999-era optimizers the paper measures against ([`sql`]),
//! * forward-only filtered server cursors over a **simulated wire** that
//!   charges marshalling and round-trip costs ([`cursor::ServerCursor`],
//!   [`wire`]),
//! * the auxiliary access paths of §4.3.3: temp-table copies, TID sets
//!   with random-access fetch, and keyset cursors with server-side
//!   residual filters ([`database::Database`], [`cursor::KeysetCursor`]),
//! * deterministic I/O statistics that make experiment *shapes*
//!   machine-checkable ([`stats::DbStats`]).
//!
//! ## Quick example
//!
//! ```
//! use scaleclass_sqldb::{Database, execute, Pred, Schema};
//!
//! let mut db = Database::new();
//! execute(&mut db, "CREATE TABLE d (a CARDINALITY 2, class CARDINALITY 2)").unwrap();
//! execute(&mut db, "INSERT INTO d VALUES (0,0), (0,1), (1,1)").unwrap();
//!
//! // The paper's CC-table query shape:
//! let rs = execute(&mut db,
//!     "SELECT 'a' AS attr_name, a AS value, class, COUNT(*) \
//!      FROM d GROUP BY class, a").unwrap().into_rows().unwrap();
//! assert_eq!(rs.len(), 3);
//!
//! // Or the middleware's preferred path: a filtered server cursor.
//! let mut cur = db.open_cursor("d", Pred::Eq { col: 1, value: 1 }, 1024).unwrap();
//! let mut rows = Vec::new();
//! assert_eq!(cur.fetch_all(&mut rows), 2);
//! ```

#![warn(missing_docs)]

pub mod csv;
pub mod cursor;
pub mod database;
pub mod delta;
pub mod error;
pub mod expr;
pub mod page;
pub mod persist;
pub mod sql;
pub mod stats;
pub mod storage;
pub mod types;
pub mod wire;

pub use csv::{export_csv, import_csv};
pub use cursor::{BlockCursor, KeysetCursor, ServerCursor};
pub use database::{Database, TidSet};
pub use delta::{DeltaLog, DeltaSign, RowDelta};
pub use error::{DbError, DbResult};
pub use expr::Pred;
pub use persist::{open_database, save_database};
pub use sql::{execute, execute_script, ExecOutcome, ResultSet, SqlValue};
pub use stats::{CostWeights, DbStats, StatsSnapshot};
pub use storage::Table;
pub use types::{Code, ColumnMeta, Schema, Tid, CODE_BYTES};
