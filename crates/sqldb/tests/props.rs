//! Property tests for the backend substrate: total functions on
//! arbitrary input, storage round trips, and executor self-consistency.

use proptest::prelude::*;
use scaleclass_sqldb::sql::parse;
use scaleclass_sqldb::wire::WireBatch;
use scaleclass_sqldb::{execute, Code, Database, DbStats, Pred, Schema, Table};

proptest! {
    /// The SQL front end is total: arbitrary input may fail to parse but
    /// must never panic.
    #[test]
    fn parser_never_panics(input in ".{0,200}") {
        let _ = parse(&input);
    }

    /// … including inputs built from SQL-ish fragments, which reach deeper
    /// parser states.
    #[test]
    fn parser_never_panics_on_sqlish(
        parts in prop::collection::vec(
            prop::sample::select(vec![
                "SELECT", "FROM", "WHERE", "GROUP", "BY", "UNION", "ALL",
                "COUNT", "(", ")", "*", ",", "=", "<>", "AND", "OR", "NOT",
                "AS", "t", "a1", "class", "42", "'x'", ";",
            ]),
            0..25,
        )
    ) {
        let input = parts.join(" ");
        let _ = parse(&input);
    }

    /// Wire marshalling round-trips arbitrary row batches exactly.
    #[test]
    fn wire_round_trips(
        rows in prop::collection::vec(
            prop::collection::vec(any::<Code>(), 3),
            0..50,
        )
    ) {
        let stats = DbStats::new();
        let mut batch = WireBatch::new();
        for r in &rows {
            batch.push(r);
        }
        let mut out = Vec::new();
        let shipped = batch.transmit(3, &stats, &mut out);
        prop_assert_eq!(shipped, rows.len());
        let flat: Vec<Code> = rows.into_iter().flatten().collect();
        prop_assert_eq!(out, flat);
    }

    /// Tables preserve insertion order across any page count, and every
    /// TID fetched individually matches the scanned row.
    #[test]
    fn table_scan_round_trips(
        rows in prop::collection::vec(
            (0u16..8, 0u16..4, 0u16..3),
            1..300,
        )
    ) {
        let mut t = Table::new(Schema::from_pairs(&[("a", 8), ("b", 4), ("c", 3)]));
        for &(a, b, c) in &rows {
            t.insert(&[a, b, c]).unwrap();
        }
        let stats = DbStats::new();
        let scanned: Vec<(scaleclass_sqldb::Tid, Vec<Code>)> =
            t.scan(&stats).map(|(tid, r)| (tid, r.to_vec())).collect();
        prop_assert_eq!(scanned.len(), rows.len());
        for (i, ((tid, row), &(a, b, c))) in scanned.iter().zip(&rows).enumerate() {
            prop_assert_eq!(row.clone(), vec![a, b, c], "row {}", i);
            let fetched = t.fetch_by_tid(*tid, &stats).unwrap();
            prop_assert_eq!(fetched, &row[..]);
        }
    }

    /// GROUP BY counts always sum to the WHERE-filtered row count.
    #[test]
    fn group_by_counts_sum_to_total(
        rows in prop::collection::vec((0u16..4, 0u16..3), 1..120,),
        filter_value in 0u16..4,
    ) {
        let mut db = Database::new();
        db.create_table("t", Schema::from_pairs(&[("a", 4), ("c", 3)])).unwrap();
        for &(a, c) in &rows {
            db.insert("t", &[a, c]).unwrap();
        }
        let sql = format!(
            "SELECT c, COUNT(*) AS n FROM t WHERE a <> {filter_value} GROUP BY c"
        );
        let rs = execute(&mut db, &sql).unwrap().into_rows().unwrap();
        let total: u64 = rs.rows.iter().map(|r| r[1].as_int().unwrap()).sum();
        let expected = rows.iter().filter(|&&(a, _)| a != filter_value).count() as u64;
        prop_assert_eq!(total, expected);
    }

    /// Predicate combinators have their boolean semantics.
    #[test]
    fn pred_combinators_are_boolean(
        row in prop::collection::vec(0u16..5, 4),
        atoms in prop::collection::vec((0usize..4, 0u16..5, any::<bool>()), 0..5),
    ) {
        let preds: Vec<Pred> = atoms
            .iter()
            .map(|&(col, value, eq)| if eq {
                Pred::Eq { col, value }
            } else {
                Pred::NotEq { col, value }
            })
            .collect();
        let conj = Pred::and(preds.clone());
        let disj = Pred::or(preds.clone());
        prop_assert_eq!(conj.eval(&row), preds.iter().all(|p| p.eval(&row)));
        prop_assert_eq!(disj.eval(&row), preds.iter().any(|p| p.eval(&row)));
    }

    /// Filtered cursors ship exactly the matching rows, in order.
    #[test]
    fn cursor_matches_manual_filter(
        rows in prop::collection::vec((0u16..4, 0u16..2), 0..200),
        value in 0u16..4,
        batch in 1usize..64,
    ) {
        let mut db = Database::new();
        db.create_table("t", Schema::from_pairs(&[("a", 4), ("c", 2)])).unwrap();
        for &(a, c) in &rows {
            db.insert("t", &[a, c]).unwrap();
        }
        let mut cur = db.open_cursor("t", Pred::Eq { col: 0, value }, batch).unwrap();
        let mut flat = Vec::new();
        let n = cur.fetch_all(&mut flat);
        let expected: Vec<Code> = rows
            .iter()
            .filter(|&&(a, _)| a == value)
            .flat_map(|&(a, c)| [a, c])
            .collect();
        prop_assert_eq!(n, expected.len() / 2);
        prop_assert_eq!(flat, expected);
    }

    /// CSV import/export round-trips arbitrary label tables.
    #[test]
    fn csv_round_trips(
        labels in prop::collection::vec("[a-z]{1,6}", 1..4),
        rows in prop::collection::vec(prop::collection::vec(0usize..3, 2), 0..30),
    ) {
        // Build a CSV from a fixed header and label-indexed cells.
        let mut csv = String::from("col_x,col_y\n");
        for row in &rows {
            let cells: Vec<&str> = row
                .iter()
                .map(|&i| labels[i % labels.len()].as_str())
                .collect();
            csv.push_str(&cells.join(","));
            csv.push('\n');
        }
        let table = scaleclass_sqldb::import_csv(std::io::Cursor::new(csv.clone())).unwrap();
        prop_assert_eq!(table.nrows() as usize, rows.len());
        let mut out = Vec::new();
        scaleclass_sqldb::export_csv(&table, &mut out).unwrap();
        prop_assert_eq!(String::from_utf8(out).unwrap(), csv);
    }
}
