//! Sampling strategies (`prop::sample::select`).

use crate::{Strategy, TestRng};
use std::fmt;

/// Strategy choosing uniformly from a fixed list of options.
pub fn select<T: Clone + fmt::Debug>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select requires at least one option");
    Select { options }
}

/// Strategy returned by [`select`].
#[derive(Debug, Clone)]
pub struct Select<T: Clone + fmt::Debug> {
    options: Vec<T>,
}

impl<T: Clone + fmt::Debug> Strategy for Select<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].clone()
    }
}
