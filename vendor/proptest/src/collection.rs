//! Collection strategies (`prop::collection::vec`).

use crate::{Strategy, TestRng};
use std::ops::{Range, RangeInclusive};

/// Inclusive size bounds for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        let (min, max) = r.into_inner();
        assert!(min <= max, "empty size range");
        SizeRange { min, max }
    }
}

/// Strategy generating `Vec`s of `element` values with a length drawn from
/// `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = rng.between_u128(self.size.min as i128, self.size.max as i128) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
