//! Vendored stand-in for the subset of `proptest` 1.x used by this
//! workspace.
//!
//! The build environment has no crates registry, so this crate
//! re-implements the pieces the test suites consume: the [`Strategy`]
//! trait (`prop_map` / `prop_flat_map`), range / tuple / vec / regex-string
//! strategies, `prop::collection::vec`, `prop::sample::select`,
//! [`any`], the `proptest!` macro, and `prop_assert*`. Cases are generated
//! from a deterministic per-test RNG; there is **no shrinking** — on
//! failure the runner prints the full generated inputs instead, which is
//! adequate for the small input sizes these suites use.
//!
//! Case count defaults to 256 (like upstream) and can be overridden with
//! the `PROPTEST_CASES` environment variable.

use std::fmt;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

pub mod collection;
pub mod sample;

/// Everything a test file needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };

    /// Namespace mirror of upstream's `prelude::prop`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

// ---------------------------------------------------------------------------
// Deterministic RNG (xoshiro256**, seeded by splitmix64)
// ---------------------------------------------------------------------------

/// Deterministic per-case random source handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Expand a 64-bit seed into generator state.
    pub fn from_seed(seed: u64) -> Self {
        fn splitmix64(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
        let mut sm = seed;
        TestRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform draw from `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }

    /// Uniform draw from `[lo, hi]` (inclusive), tolerating the full u64
    /// domain.
    pub fn between_u128(&mut self, lo: i128, hi: i128) -> i128 {
        debug_assert!(lo <= hi);
        let span = (hi - lo) as u128 + 1;
        lo + ((self.next_u64() as u128) % span) as i128
    }

    /// Uniform draw from `[0, 1)` with 53 bits of precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

// ---------------------------------------------------------------------------
// Strategy trait and combinators
// ---------------------------------------------------------------------------

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value: fmt::Debug;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with a function.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: fmt::Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Build a dependent strategy from each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { source: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: fmt::Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.source.generate(rng)).generate(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + fmt::Debug>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// Integer and float ranges.
macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                rng.between_u128(self.start as i128, self.end as i128 - 1) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (s, e) = (*self.start(), *self.end());
                assert!(s <= e, "empty range strategy");
                rng.between_u128(s as i128, e as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (self.end - self.start) * rng.unit_f64() as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (s, e) = (*self.start(), *self.end());
                assert!(s <= e, "empty range strategy");
                s + (e - s) * rng.unit_f64() as $t
            }
        }
    )*};
}
float_range_strategy!(f32, f64);

// Tuples of strategies.
macro_rules! tuple_strategy {
    ($(($($name:ident),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A);
    (A, B);
    (A, B, C);
    (A, B, C, D);
    (A, B, C, D, E);
    (A, B, C, D, E, G);
}

/// A `Vec` of strategies generates one value per element, in order.
impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        self.iter().map(|s| s.generate(rng)).collect()
    }
}

// ---------------------------------------------------------------------------
// Regex-subset string strategies (`"[a-z]{1,6}"`, `".{0,200}"`, …)
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
struct CharClass {
    // Inclusive codepoint ranges.
    ranges: Vec<(u32, u32)>,
}

impl CharClass {
    fn dot() -> Self {
        // Printable ASCII plus a slice of Latin-1, so multi-byte UTF-8
        // sequences reach the code under test.
        CharClass {
            ranges: vec![(0x20, 0x7e), (0xa1, 0xff)],
        }
    }

    fn single(c: char) -> Self {
        CharClass {
            ranges: vec![(c as u32, c as u32)],
        }
    }

    fn sample(&self, rng: &mut TestRng) -> char {
        let total: u32 = self.ranges.iter().map(|&(lo, hi)| hi - lo + 1).sum();
        let mut pick = rng.below(total as u64) as u32;
        for &(lo, hi) in &self.ranges {
            let size = hi - lo + 1;
            if pick < size {
                return char::from_u32(lo + pick).expect("valid codepoint in class");
            }
            pick -= size;
        }
        unreachable!("pick < total")
    }
}

#[derive(Debug, Clone)]
struct RegexAtom {
    class: CharClass,
    min: u32,
    max: u32,
}

fn parse_regex_subset(pattern: &str) -> Vec<RegexAtom> {
    let mut chars = pattern.chars().peekable();
    let mut atoms = Vec::new();
    while let Some(c) = chars.next() {
        let class = match c {
            '.' => CharClass::dot(),
            '[' => {
                let mut ranges = Vec::new();
                let mut class_chars: Vec<char> = Vec::new();
                for cc in chars.by_ref() {
                    if cc == ']' {
                        break;
                    }
                    class_chars.push(cc);
                }
                assert!(
                    !class_chars.is_empty() && class_chars[0] != '^',
                    "unsupported char class in vendored proptest: {pattern:?}"
                );
                let mut i = 0;
                while i < class_chars.len() {
                    if i + 2 < class_chars.len() && class_chars[i + 1] == '-' {
                        ranges.push((class_chars[i] as u32, class_chars[i + 2] as u32));
                        i += 3;
                    } else {
                        let ch = class_chars[i];
                        ranges.push((ch as u32, ch as u32));
                        i += 1;
                    }
                }
                CharClass { ranges }
            }
            '\\' => CharClass::single(chars.next().expect("dangling escape")),
            '(' | ')' | '|' | '^' | '$' => {
                panic!("unsupported regex feature {c:?} in vendored proptest: {pattern:?}")
            }
            other => CharClass::single(other),
        };
        // Optional quantifier.
        let (min, max) = match chars.peek() {
            Some('{') => {
                chars.next();
                let mut spec = String::new();
                for cc in chars.by_ref() {
                    if cc == '}' {
                        break;
                    }
                    spec.push(cc);
                }
                if let Some((lo, hi)) = spec.split_once(',') {
                    (
                        lo.trim().parse().expect("bad quantifier"),
                        hi.trim().parse().expect("bad quantifier"),
                    )
                } else {
                    let n: u32 = spec.trim().parse().expect("bad quantifier");
                    (n, n)
                }
            }
            Some('?') => {
                chars.next();
                (0, 1)
            }
            Some('*') => {
                chars.next();
                (0, 8)
            }
            Some('+') => {
                chars.next();
                (1, 8)
            }
            _ => (1, 1),
        };
        atoms.push(RegexAtom { class, min, max });
    }
    atoms
}

/// A `&'static str` is interpreted as a regex (subset) generating `String`s,
/// mirroring upstream's string strategies.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let atoms = parse_regex_subset(self);
        let mut out = String::new();
        for atom in &atoms {
            let count = rng.between_u128(atom.min as i128, atom.max as i128) as u32;
            for _ in 0..count {
                out.push(atom.class.sample(rng));
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// any::<T>()
// ---------------------------------------------------------------------------

/// Types with a canonical "whole domain" strategy.
pub trait Arbitrary: Sized + fmt::Debug {
    /// Draw one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite doubles spanning a wide magnitude range.
        let mantissa = rng.unit_f64() * 2.0 - 1.0;
        let exp = rng.between_u128(-60, 60) as i32;
        mantissa * (exp as f64).exp2()
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> Self {
        CharClass::dot().sample(rng)
    }
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<A> {
    _marker: PhantomData<A>,
}

impl<A: Arbitrary> Strategy for AnyStrategy<A> {
    type Value = A;

    fn generate(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

/// The whole-domain strategy for `A`.
pub fn any<A: Arbitrary>() -> AnyStrategy<A> {
    AnyStrategy {
        _marker: PhantomData,
    }
}

// ---------------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------------

/// Runner configuration; only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Failure of a single test case (the `Err` of a case body).
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Drive `body` for the configured number of cases with deterministic
/// per-case seeds. Panics (failing the enclosing `#[test]`) on the first
/// case whose body returns `Err`.
pub fn run_cases<F>(config: &ProptestConfig, test_name: &str, body: F)
where
    F: Fn(&mut TestRng) -> Result<(), TestCaseError>,
{
    let cases = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse::<u32>().ok())
        .unwrap_or(config.cases)
        .max(1);
    let base = fnv1a(test_name);
    for case in 0..cases {
        let seed = base ^ (u64::from(case)).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let mut rng = TestRng::from_seed(seed);
        if let Err(e) = body(&mut rng) {
            panic!("proptest {test_name} failed at case {case}/{cases} (seed {seed:#x}):\n{e}");
        }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Define property tests: `proptest! { #[test] fn f(x in strat) { … } }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident ( $($pat:pat in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            $crate::run_cases(&__config, stringify!($name), |__rng| {
                let __vals = ($($crate::Strategy::generate(&($strat), __rng),)*);
                let __dbg = ::std::format!("{:?}", &__vals);
                let __outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(
                        move || -> ::std::result::Result<(), $crate::TestCaseError> {
                            let ($($pat,)*) = __vals;
                            $body
                            ::std::result::Result::Ok(())
                        },
                    ),
                );
                match __outcome {
                    ::std::result::Result::Ok(::std::result::Result::Ok(())) => {
                        ::std::result::Result::Ok(())
                    }
                    ::std::result::Result::Ok(::std::result::Result::Err(e)) => {
                        ::std::result::Result::Err($crate::TestCaseError(::std::format!(
                            "{}\n  inputs: {}",
                            e.0,
                            __dbg
                        )))
                    }
                    ::std::result::Result::Err(payload) => {
                        ::std::eprintln!("proptest case inputs: {}", __dbg);
                        ::std::panic::resume_unwind(payload)
                    }
                }
            });
        }
    )*};
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", ::std::stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError(::std::format!($($fmt)+)));
        }
    };
}

/// Fail the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::std::result::Result::Err($crate::TestCaseError(::std::format!(
                        "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
                        l,
                        r
                    )));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::std::result::Result::Err($crate::TestCaseError(::std::format!(
                        "assertion failed: `(left == right)`: {}\n  left: `{:?}`\n right: `{:?}`",
                        ::std::format!($($fmt)+),
                        l,
                        r
                    )));
                }
            }
        }
    };
}

/// Fail the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if *l == *r {
                    return ::std::result::Result::Err($crate::TestCaseError(::std::format!(
                        "assertion failed: `(left != right)`\n  both: `{:?}`",
                        l
                    )));
                }
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn regex_subset_shapes() {
        let mut rng = crate::TestRng::from_seed(5);
        for _ in 0..200 {
            let s = crate::Strategy::generate(&"[a-z]{1,6}", &mut rng);
            assert!((1..=6).contains(&s.chars().count()), "bad len: {s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
            let t = crate::Strategy::generate(&".{0,200}", &mut rng);
            assert!(t.chars().count() <= 200);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Ranges stay in bounds, tuples and vecs compose.
        #[test]
        fn generated_values_in_bounds(
            x in 3u16..9,
            (lo, hi) in (0u64..10, 10u64..20),
            v in prop::collection::vec(0usize..4, 2..=5),
            pick in prop::sample::select(vec!["a", "b"]),
            flag in any::<bool>(),
        ) {
            prop_assert!((3..9).contains(&x));
            prop_assert!(lo < hi, "lo {lo} hi {hi}");
            prop_assert!((2..=5).contains(&v.len()));
            prop_assert!(v.iter().all(|&e| e < 4));
            prop_assert!(pick == "a" || pick == "b");
            let _ = flag;
        }

        /// prop_map / prop_flat_map plumbing works.
        #[test]
        fn combinators_compose(
            n in (1usize..4).prop_flat_map(|n| {
                (Just(n), prop::collection::vec(0u16..3, n))
            }),
        ) {
            let (len, items) = n;
            prop_assert_eq!(items.len(), len);
        }
    }
}
