//! Vendored stand-in for the subset of `criterion` 0.5 used by this
//! workspace's `harness = false` bench targets. It keeps the group /
//! bench-function / throughput API shape but replaces the statistics
//! engine with straightforward wall-clock timing: each benchmark runs a
//! warm-up iteration plus `sample_size` timed iterations and prints
//! mean / best wall time (and derived throughput, when declared).

use std::fmt;
use std::time::{Duration, Instant};

/// Prevent the optimizer from discarding a value (API-compatible shim).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Set the number of timed iterations per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            throughput: None,
            _criterion: self,
        }
    }

    /// Run a standalone benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let sample_size = self.sample_size;
        run_one(id, sample_size, None, f);
        self
    }
}

/// Declared per-iteration work, used to derive throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Identifier carrying only a parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// A group of related benchmarks sharing throughput settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Declare per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Override the timed iteration count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into().label);
        run_one(&label, self.sample_size, self.throughput, f);
        self
    }

    /// Run one benchmark parameterized by an input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    rounds: usize,
}

impl Bencher {
    /// Time `rounds` invocations of `f` (after one warm-up call).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warm-up, also primes caches/files
        for _ in 0..self.rounds {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    label: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut b = Bencher {
        samples: Vec::new(),
        rounds: sample_size,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{label}: no samples recorded");
        return;
    }
    let total: Duration = b.samples.iter().sum();
    let mean = total / b.samples.len() as u32;
    let best = *b.samples.iter().min().expect("non-empty");
    let rate = match throughput {
        Some(Throughput::Elements(n)) if mean.as_secs_f64() > 0.0 => {
            format!("  ({:.0} elem/s)", n as f64 / mean.as_secs_f64())
        }
        Some(Throughput::Bytes(n)) if mean.as_secs_f64() > 0.0 => {
            format!("  ({:.0} B/s)", n as f64 / mean.as_secs_f64())
        }
        _ => String::new(),
    };
    println!(
        "{label}: mean {mean:?}, best {best:?} over {} samples{rate}",
        b.samples.len()
    );
}

/// Define a benchmark group entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Define `main` running the given groups, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_and_bencher_run_closures() {
        let mut c = Criterion::default().sample_size(2);
        let mut g = c.benchmark_group("shim");
        g.throughput(Throughput::Elements(10));
        let mut runs = 0;
        g.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        g.bench_with_input(BenchmarkId::new("param", 3), &3u32, |b, &x| {
            b.iter(|| x * 2)
        });
        g.finish();
        assert!(runs >= 2);
    }
}
