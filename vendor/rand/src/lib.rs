//! Vendored stand-in for the subset of `rand` 0.8 used by this workspace.
//!
//! The build environment has no access to a crates registry, so the real
//! `rand` cannot be fetched; this crate re-implements exactly the API
//! surface the workspace consumes (`StdRng`, `SeedableRng::seed_from_u64`,
//! `Rng::{gen, gen_range, gen_bool}`) on top of a deterministic
//! xoshiro256** generator. Streams are stable across runs and platforms,
//! which is all the workload generators require.

use std::ops::{Range, RangeInclusive};

pub mod rngs;

/// Core source of randomness: 64 uniformly random bits per call.
pub trait RngCore {
    /// Next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly distributed bits (upper half of `next_u64`).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling helpers, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Sample a value from the standard distribution of `T`
    /// (unit interval for floats, uniform bits for integers).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from a half-open or inclusive range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// Bernoulli trial with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} out of range");
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Expand a 64-bit seed into a full generator state.
    fn seed_from_u64(state: u64) -> Self;
}

/// Standard distribution of `T`: the distribution `Rng::gen` draws from.
pub trait Standard: Sized {
    /// Draw one sample.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // 53 random bits into [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges `Rng::gen_range` accepts, mirroring `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Sample uniformly from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let r = (rng.next_u64() as u128) % span;
                (self.start as i128 + r as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (s, e) = self.into_inner();
                assert!(s <= e, "cannot sample empty range");
                let span = (e as i128 - s as i128) as u128 + 1;
                let r = (rng.next_u64() as u128) % span;
                (s as i128 + r as i128) as $t
            }
        }
    )*};
}
int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                self.start + (self.end - self.start) * unit_f64(rng) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (s, e) = self.into_inner();
                assert!(s <= e, "cannot sample empty range");
                s + (e - s) * unit_f64(rng) as $t
            }
        }
    )*};
}
float_range!(f32, f64);

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3u16..9);
            assert!((3..9).contains(&v));
            let w = rng.gen_range(-5.0f64..=5.0);
            assert!((-5.0..=5.0).contains(&w));
            let x = rng.gen_range(0usize..1);
            assert_eq!(x, 0);
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn full_u64_inclusive_range_does_not_overflow() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = rng.gen_range(0u64..=u64::MAX);
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
