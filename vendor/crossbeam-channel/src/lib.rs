//! Vendored stand-in for the subset of `crossbeam-channel` 0.5 used by
//! this workspace: multi-producer multi-consumer `bounded` / `unbounded`
//! channels with blocking `send` / `recv`, non-blocking `try_recv`, and
//! disconnect semantics. Built on `std::sync::{Mutex, Condvar}` — slower
//! than the real lock-free implementation, but semantically equivalent for
//! the block-granular pipelines this workspace runs.

use std::collections::VecDeque;
use std::error::Error;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};

struct Inner<T> {
    queue: VecDeque<T>,
    cap: Option<usize>,
    senders: usize,
    receivers: usize,
}

struct Chan<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    not_full: Condvar,
}

/// Sending half of a channel. Cloneable; the channel disconnects for
/// receivers when the last sender drops.
pub struct Sender<T> {
    chan: Arc<Chan<T>>,
}

/// Receiving half of a channel. Cloneable; the channel disconnects for
/// senders when the last receiver drops.
pub struct Receiver<T> {
    chan: Arc<Chan<T>>,
}

/// Error returned by [`Sender::send`] when all receivers are gone; carries
/// the unsent value back to the caller.
#[derive(PartialEq, Eq, Clone, Copy)]
pub struct SendError<T>(pub T);

/// Error returned by [`Receiver::recv`] when the channel is empty and all
/// senders are gone.
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub struct RecvError;

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub enum TryRecvError {
    /// Nothing queued right now, but senders still exist.
    Empty,
    /// Nothing queued and every sender has dropped.
    Disconnected,
}

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

impl<T> Error for SendError<T> {}

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty and disconnected channel")
    }
}

impl Error for RecvError {}

impl fmt::Display for TryRecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TryRecvError::Empty => f.write_str("receiving on an empty channel"),
            TryRecvError::Disconnected => {
                f.write_str("receiving on an empty and disconnected channel")
            }
        }
    }
}

impl Error for TryRecvError {}

fn channel<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let chan = Arc::new(Chan {
        inner: Mutex::new(Inner {
            queue: VecDeque::new(),
            cap,
            senders: 1,
            receivers: 1,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (Sender { chan: chan.clone() }, Receiver { chan })
}

/// Create a channel of unlimited capacity.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    channel(None)
}

/// Create a channel holding at most `cap` queued messages; `send` blocks
/// while the channel is full. A capacity of zero is modelled as one slot
/// (real crossbeam uses a rendezvous; this workspace never requests zero).
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    channel(Some(cap.max(1)))
}

impl<T> Sender<T> {
    /// Block until the value is queued, or return it if every receiver is
    /// gone.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut inner = self.chan.inner.lock().unwrap();
        loop {
            if inner.receivers == 0 {
                return Err(SendError(value));
            }
            match inner.cap {
                Some(cap) if inner.queue.len() >= cap => {
                    inner = self.chan.not_full.wait(inner).unwrap();
                }
                _ => {
                    inner.queue.push_back(value);
                    drop(inner);
                    self.chan.not_empty.notify_one();
                    return Ok(());
                }
            }
        }
    }

    /// Number of messages currently queued (for observability).
    pub fn len(&self) -> usize {
        self.chan.inner.lock().unwrap().queue.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Receiver<T> {
    /// Block until a value arrives, or fail once the channel is empty and
    /// every sender is gone.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut inner = self.chan.inner.lock().unwrap();
        loop {
            if let Some(v) = inner.queue.pop_front() {
                drop(inner);
                self.chan.not_full.notify_one();
                return Ok(v);
            }
            if inner.senders == 0 {
                return Err(RecvError);
            }
            inner = self.chan.not_empty.wait(inner).unwrap();
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut inner = self.chan.inner.lock().unwrap();
        if let Some(v) = inner.queue.pop_front() {
            drop(inner);
            self.chan.not_full.notify_one();
            return Ok(v);
        }
        if inner.senders == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// Blocking iterator over received values; ends on disconnect.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { rx: self }
    }

    /// Number of messages currently queued (for observability).
    pub fn len(&self) -> usize {
        self.chan.inner.lock().unwrap().queue.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Iterator returned by [`Receiver::iter`].
pub struct Iter<'a, T> {
    rx: &'a Receiver<T>,
}

impl<T> Iterator for Iter<'_, T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        self.rx.recv().ok()
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.chan.inner.lock().unwrap().senders += 1;
        Sender {
            chan: self.chan.clone(),
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.chan.inner.lock().unwrap().receivers += 1;
        Receiver {
            chan: self.chan.clone(),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut inner = self.chan.inner.lock().unwrap();
        inner.senders -= 1;
        if inner.senders == 0 {
            drop(inner);
            self.chan.not_empty.notify_all();
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut inner = self.chan.inner.lock().unwrap();
        inner.receivers -= 1;
        if inner.receivers == 0 {
            drop(inner);
            self.chan.not_full.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_round_trip_preserves_order() {
        let (tx, rx) = unbounded();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        for i in 0..100 {
            assert_eq!(rx.recv(), Ok(i));
        }
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_fails_after_all_receivers_drop() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert_eq!(tx.send(7), Err(SendError(7)));
    }

    #[test]
    fn bounded_backpressure_blocks_until_consumed() {
        let (tx, rx) = bounded(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        let t = std::thread::spawn(move || {
            tx.send(3).unwrap(); // blocks until a slot frees
            tx.send(4).unwrap();
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Ok(3));
        assert_eq!(rx.recv(), Ok(4));
        t.join().unwrap();
    }

    #[test]
    fn mpmc_drains_every_message_exactly_once() {
        let (tx, rx) = bounded(4);
        let producers: Vec<_> = (0..3)
            .map(|p| {
                let tx = tx.clone();
                std::thread::spawn(move || {
                    for i in 0..50 {
                        tx.send(p * 1000 + i).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        let consumers: Vec<_> = (0..2)
            .map(|_| {
                let rx = rx.clone();
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Ok(v) = rx.recv() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        let mut all: Vec<i32> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        let expected: Vec<i32> = (0..3)
            .flat_map(|p| (0..50).map(move |i| p * 1000 + i))
            .collect();
        assert_eq!(all, expected);
    }
}
