//! Shared helpers for the runnable examples.

#![warn(missing_docs)]

use scaleclass::MiddlewareStats;
use scaleclass_sqldb::StatsSnapshot;

/// Pretty-print the server + middleware statistics block the examples end
/// with.
pub fn print_stats(server: &StatsSnapshot, mw: &MiddlewareStats) {
    println!("-- backend server ------------------------------------");
    println!("  sequential scans      {}", server.seq_scans);
    println!("  pages read            {}", server.pages_read);
    println!("  rows scanned          {}", server.rows_scanned);
    println!("  rows shipped (wire)   {}", server.rows_shipped);
    println!("  bytes shipped (wire)  {}", server.bytes_shipped);
    println!("  GROUP BY queries      {}", server.group_by_queries);
    println!("-- middleware ----------------------------------------");
    println!("  scheduling rounds     {}", mw.rounds);
    println!("  requests served       {}", mw.requests_served);
    println!(
        "  scans (server/file/mem) {}/{}/{}",
        mw.server_scans, mw.file_scans, mw.memory_scans
    );
    println!("  staging files created {}", mw.files_created);
    println!("  file rows written     {}", mw.file_rows_written);
    println!("  file rows read        {}", mw.file_rows_read);
    println!("  memory rows staged    {}", mw.memory_rows_staged);
    println!("  memory rows read      {}", mw.memory_rows_read);
    println!("  SQL fallbacks         {}", mw.sql_fallbacks);
    println!("  peak modelled memory  {} bytes", mw.peak_memory_bytes);
}

/// Format a fraction as a percentage string.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.756), "75.6%");
        assert_eq!(pct(1.0), "100.0%");
    }
}
