//! Census workbench: an end-to-end classification study on the
//! census-like workload (the paper's third data set) under three staging
//! policies, with train/test evaluation and full cost accounting.
//!
//! ```text
//! cargo run --release -p scaleclass-examples --bin census_workbench [rows]
//! ```

use scaleclass::{FileStagingPolicy, Middleware, MiddlewareConfig};
use scaleclass_datagen::{census, train_test_split};
use scaleclass_dtree::{evaluate, grow_with_middleware, prune_pessimistic, GrowConfig};
use scaleclass_examples::pct;

fn main() {
    let rows: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20_000);

    println!("Generating census-like data: {rows} rows …");
    let data = census::generate(&census::CensusParams { rows, seed: 7 });
    let arity = data.arity();
    let (train, test) = train_test_split(&data.rows, arity, 0.3, 11);
    println!(
        "  train {} rows / test {} rows, {} attributes, binary income class",
        train.len() / arity,
        test.len() / arity,
        arity - 1
    );

    let grow = GrowConfig {
        min_rows: (rows / 500).max(2) as u64,
        ..GrowConfig::default()
    };

    let policies: [(&str, FileStagingPolicy, bool); 3] = [
        (
            "no staging (server scans only)",
            FileStagingPolicy::Disabled,
            false,
        ),
        (
            "hybrid file staging (50% split)",
            FileStagingPolicy::Hybrid {
                split_threshold: 0.5,
            },
            false,
        ),
        (
            "hybrid files + memory caching",
            FileStagingPolicy::Hybrid {
                split_threshold: 0.5,
            },
            true,
        ),
    ];

    for (name, policy, mem) in policies {
        println!("\n=== policy: {name} ===");
        let db = scaleclass_datagen::into_database(data.schema.clone(), &train, "census");
        let cfg = MiddlewareConfig::builder()
            .memory_budget_mb(0.25)
            .file_policy(policy)
            .memory_caching(mem)
            .build();
        let mut mw = Middleware::new(db, "census", "income", cfg).expect("session");
        let out = grow_with_middleware(&mut mw, &grow).expect("grow");
        let tree = out.tree;
        let pruned = prune_pessimistic(&tree);

        let cm = evaluate(|row| pruned.classify(row), &test, arity, data.class_col, 2);
        println!(
            "tree: {} nodes (pruned to {}), depth {}, {} leaves",
            tree.len(),
            pruned.len(),
            tree.depth().unwrap_or(0),
            tree.leaves().count()
        );
        let (s, i, l) = tree.source_mix();
        println!("node data sources: {s} server / {i} file / {l} memory (Fig. 1 tags)");
        println!("test accuracy: {}", pct(cm.accuracy()));
        println!("confusion matrix:\n{}", cm.render());
        scaleclass_examples::print_stats(&mw.db_stats(), mw.stats());
    }
}
