//! Quickstart: load a small categorical table into the embedded SQL
//! backend, grow a decision tree through the scalable-classification
//! middleware, print the tree, and classify new rows.
//!
//! ```text
//! cargo run -p scaleclass-examples --bin quickstart
//! ```

use scaleclass::{Middleware, MiddlewareConfig};
use scaleclass_dtree::{grow_with_middleware, GrowConfig};
use scaleclass_sqldb::{execute, Database};

fn main() {
    // 1. A toy "play tennis?" table, created through plain SQL.
    //    Columns: outlook {sunny, overcast, rain}, humidity {normal, high},
    //    wind {weak, strong}, play {no, yes}.
    let mut db = Database::new();
    execute(
        &mut db,
        "CREATE TABLE weather (outlook CARDINALITY 3, humidity CARDINALITY 2, \
         wind CARDINALITY 2, play CARDINALITY 2)",
    )
    .expect("create table");
    let rows: &[[u16; 4]] = &[
        // the classic Quinlan data set, coded
        [0, 1, 0, 0],
        [0, 1, 1, 0],
        [1, 1, 0, 1],
        [2, 1, 0, 1],
        [2, 0, 0, 1],
        [2, 0, 1, 0],
        [1, 0, 1, 1],
        [0, 1, 0, 0],
        [0, 0, 0, 1],
        [2, 1, 0, 1],
        [0, 0, 1, 1],
        [1, 1, 1, 1],
        [1, 0, 0, 1],
        [2, 1, 1, 0],
    ];
    for r in rows {
        execute(
            &mut db,
            &format!(
                "INSERT INTO weather VALUES ({}, {}, {}, {})",
                r[0], r[1], r[2], r[3]
            ),
        )
        .expect("insert");
    }

    // 2. Start a middleware session predicting `play` and grow the tree.
    //    The client below never touches a data row: it only consumes
    //    counts tables the middleware builds in batched scans.
    let mut mw = Middleware::new(db, "weather", "play", MiddlewareConfig::default())
        .expect("middleware session");
    let outcome = grow_with_middleware(&mut mw, &GrowConfig::default()).expect("grow");
    let tree = &outcome.tree;

    println!("Grown decision tree ({} nodes):", tree.len());
    println!("{}", tree.render(40));

    // 3. Classify unseen rows.
    for (desc, row) in [
        ("sunny, high humidity, weak wind ", [0u16, 1, 0, 0]),
        ("overcast, normal humidity, weak ", [1, 0, 0, 0]),
        ("rain, high humidity, strong wind", [2, 1, 1, 0]),
    ] {
        let play = tree.classify(&row);
        println!("{desc} -> play = {}", if play == 1 { "yes" } else { "no" });
    }

    // 4. What did it cost?
    println!();
    scaleclass_examples::print_stats(&mw.db_stats(), mw.stats());
    println!(
        "\n{} counts requests were answered in {} middleware rounds.",
        outcome.requests_issued,
        mw.stats().rounds
    );
}
