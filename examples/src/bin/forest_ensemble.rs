//! The third classifier plugged into the architecture: a random-subspace
//! forest, grown member-by-member through the middleware (§1: the scheme
//! serves any sufficient-statistics-driven algorithm). Compares a single
//! tree, the forest, and shows per-attribute feature importance.
//!
//! ```text
//! cargo run --release -p scaleclass-examples --bin forest_ensemble
//! ```

use scaleclass::{Middleware, MiddlewareConfig};
use scaleclass_datagen::{census, train_test_split};
use scaleclass_dtree::{
    feature_importance, grow_forest_with_middleware, grow_with_middleware, ForestConfig, GrowConfig,
};
use scaleclass_examples::pct;

fn main() {
    let rows = 20_000;
    let data = census::generate(&census::CensusParams { rows, seed: 31 });
    let arity = data.arity();
    let (train, test) = train_test_split(&data.rows, arity, 0.3, 8);
    let grow = GrowConfig {
        min_rows: 40,
        ..GrowConfig::default()
    };
    let accuracy_of = |classify: &dyn Fn(&[u16]) -> u16| {
        let correct = test
            .chunks_exact(arity)
            .filter(|r| classify(r) == r[data.class_col as usize])
            .count();
        correct as f64 / (test.len() / arity) as f64
    };

    // --- Single tree --------------------------------------------------------
    let db = scaleclass_datagen::into_database(data.schema.clone(), &train, "census");
    let mut mw =
        Middleware::new(db, "census", "income", MiddlewareConfig::default()).expect("session");
    let single = grow_with_middleware(&mut mw, &grow).expect("grow").tree;
    let tree_scans = mw.db_stats().seq_scans;
    println!(
        "single tree : {} nodes, {} server scans, accuracy {}",
        single.len(),
        tree_scans,
        pct(accuracy_of(&|r| single.classify(r)))
    );

    // --- Subspace forest ----------------------------------------------------
    let db = scaleclass_datagen::into_database(data.schema.clone(), &train, "census");
    let mw = Middleware::new(db, "census", "income", MiddlewareConfig::default()).expect("session");
    let (forest, mw) = grow_forest_with_middleware(
        mw,
        &ForestConfig {
            trees: 11,
            grow: grow.clone(),
            ..ForestConfig::default()
        },
    )
    .expect("forest");
    println!(
        "forest (11) : {} members, {} server scans total, accuracy {}",
        forest.len(),
        mw.db_stats().seq_scans,
        pct(accuracy_of(&|r| forest.classify(r)))
    );

    // --- What mattered ------------------------------------------------------
    println!("\nfeature importance of the single tree:");
    for (attr, score) in feature_importance(&single).into_iter().take(5) {
        let name = data.schema.column(attr as usize).name().to_string();
        println!("  {name:<12} {}", pct(score));
    }
}
