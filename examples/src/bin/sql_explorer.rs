//! SQL explorer: exercise the embedded backend directly — DDL, DML, the
//! paper's CC-table UNION query (§2.3), and the server statistics that
//! show why the middleware beats it.
//!
//! ```text
//! cargo run -p scaleclass-examples --bin sql_explorer
//! ```

use scaleclass::sqlgen::cc_query_sql;
use scaleclass_sqldb::{execute, Database, Pred};

fn run(db: &mut Database, sql: &str) {
    println!("sql> {sql}");
    match execute(db, sql) {
        Ok(scaleclass_sqldb::ExecOutcome::Rows(mut rs)) => {
            rs.sort();
            println!("{rs}");
        }
        Ok(other) => println!("ok: {other:?}\n"),
        Err(e) => println!("error: {e}\n"),
    }
}

fn main() {
    let mut db = Database::new();

    run(
        &mut db,
        "CREATE TABLE t (a1 CARDINALITY 3, a2 CARDINALITY 2, class CARDINALITY 2)",
    );
    run(
        &mut db,
        "INSERT INTO t VALUES (0,0,0), (0,1,0), (1,0,1), (1,1,1), (2,0,0), (2,1,1), (2,0,1)",
    );
    run(&mut db, "SELECT * FROM t WHERE a1 = 2");
    run(
        &mut db,
        "SELECT COUNT(*) FROM t WHERE NOT (a1 = 0 OR a2 = 1)",
    );
    run(
        &mut db,
        "SELECT a1, class, COUNT(*) AS n FROM t GROUP BY a1, class",
    );

    // The paper's CC-table query for a node with condition a2 = 0:
    let schema = db.table("t").unwrap().schema().clone();
    let cc_sql = cc_query_sql("t", &schema, &Pred::Eq { col: 1, value: 0 }, &[0, 1], 2);
    println!("-- the §2.3 CC-table query the middleware's SQL fallback issues --");
    run(&mut db, &cc_sql);

    let snap = db.stats().snapshot();
    println!("-- server statistics so far --");
    println!("  statements        {}", snap.statements);
    println!("  sequential scans  {}", snap.seq_scans);
    println!("  GROUP BY queries  {}", snap.group_by_queries);
    println!("  rows scanned      {}", snap.rows_scanned);
    println!(
        "\nNote the UNION query paid one full scan per arm ({} scans for 2 \
         attributes) — exactly the 1999-optimizer behaviour (§2.3) that the \
         middleware's single-scan batched counting avoids.",
        2
    );

    // Cursors: the middleware's preferred access path.
    let mut cur = db
        .open_cursor("t", Pred::NotEq { col: 2, value: 0 }, 4)
        .expect("cursor");
    let mut out = Vec::new();
    let n = cur.fetch_all(&mut out);
    let snap2 = db.stats().snapshot();
    println!(
        "\nfiltered server cursor shipped {n} of 7 rows ({} bytes on the wire)",
        snap2.bytes_shipped - snap.bytes_shipped
    );
}
