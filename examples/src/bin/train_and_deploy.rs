//! Train-once, deploy-anywhere: grow a tree through the middleware, save
//! both the model and the database snapshot to disk, then — as a "second
//! process" — reload the model alone and classify without touching the
//! backend at all.
//!
//! ```text
//! cargo run --release -p scaleclass-examples --bin train_and_deploy
//! ```

use scaleclass::{Middleware, MiddlewareConfig};
use scaleclass_datagen::{census, train_test_split};
use scaleclass_dtree::{
    evaluate, extract_rules, grow_with_middleware, load_tree, save_tree, GrowConfig,
};
use scaleclass_examples::pct;
use scaleclass_sqldb::{open_database, save_database};

fn main() {
    let dir = std::env::temp_dir().join(format!("scaleclass-deploy-{}", std::process::id()));
    // analyze:allow(io-bypass): scratch dir for the demo's database and
    // model files; deployment I/O is outside the middleware's scan path.
    std::fs::create_dir_all(&dir).expect("temp dir");
    let db_path = dir.join("census.db");
    let model_path = dir.join("income.tree");

    // ---- Training session -------------------------------------------------
    let data = census::generate(&census::CensusParams {
        rows: 15_000,
        seed: 21,
    });
    let arity = data.arity();
    let (train, test) = train_test_split(&data.rows, arity, 0.3, 3);
    println!(
        "training on {} rows; holding out {} rows",
        train.len() / arity,
        test.len() / arity
    );
    let db = scaleclass_datagen::into_database(data.schema.clone(), &train, "census");
    save_database(&db, &db_path).expect("save db");
    let mut mw =
        Middleware::new(db, "census", "income", MiddlewareConfig::default()).expect("session");
    let grow = GrowConfig {
        min_rows: 40,
        ..GrowConfig::default()
    };
    let out = grow_with_middleware(&mut mw, &grow).expect("grow");
    // analyze:allow(io-bypass): persisting the trained model is deployment
    // I/O, not a table scan the middleware should meter.
    let model_file = std::fs::File::create(&model_path).expect("model file");
    save_tree(&out.tree, std::io::BufWriter::new(model_file)).expect("save model");
    println!(
        "trained a {}-node tree in {} middleware rounds; model saved to {}",
        out.tree.len(),
        mw.stats().rounds,
        model_path.display()
    );

    // ---- Deployment session (no backend needed) ---------------------------
    // analyze:allow(io-bypass): reloading the saved model in the deployment
    // session; no middleware is even alive here.
    let model_file = std::fs::File::open(&model_path).expect("open model");
    let tree = load_tree(std::io::BufReader::new(model_file)).expect("load model");
    let cm = evaluate(|row| tree.classify(row), &test, arity, data.class_col, 2);
    println!("\nreloaded model: {} nodes", tree.len());
    println!("holdout accuracy: {}", pct(cm.accuracy()));
    println!("first rules:\n{}", {
        let rules = extract_rules(&tree);
        rules
            .rules
            .iter()
            .take(4)
            .map(|r| r.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    });

    // ---- And the database snapshot reloads too ----------------------------
    let db = open_database(&db_path).expect("open db");
    println!(
        "\ndatabase snapshot reloads: census table has {} rows",
        db.table("census").expect("table").nrows()
    );
    // analyze:allow(io-bypass): scratch-dir cleanup.
    let _ = std::fs::remove_dir_all(&dir);
}
