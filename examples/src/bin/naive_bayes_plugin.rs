//! The second classifier plugged into the same middleware (paper §1:
//! "other classification algorithms such as Naïve Bayes can also plug-in
//! to this architecture"): train Naïve Bayes from a single counts table
//! and compare it with the decision tree on the census-like workload.
//!
//! ```text
//! cargo run --release -p scaleclass-examples --bin naive_bayes_plugin
//! ```

use scaleclass::{Middleware, MiddlewareConfig};
use scaleclass_datagen::{census, train_test_split};
use scaleclass_dtree::{evaluate, grow_with_middleware, GrowConfig, NaiveBayes};
use scaleclass_examples::pct;

fn main() {
    let rows = 20_000;
    let data = census::generate(&census::CensusParams { rows, seed: 13 });
    let arity = data.arity();
    let (train, test) = train_test_split(&data.rows, arity, 0.3, 5);

    // --- Naïve Bayes: a single root counts request suffices. -------------
    let db = scaleclass_datagen::into_database(data.schema.clone(), &train, "census");
    let mut mw =
        Middleware::new(db, "census", "income", MiddlewareConfig::default()).expect("session");
    let nb = NaiveBayes::train_with_middleware(&mut mw).expect("train NB");
    let nb_scans = mw.db_stats().seq_scans;
    let nb_cm = evaluate(|row| nb.classify(row), &test, arity, data.class_col, 2);

    // --- Decision tree over the identical training data. -----------------
    let db = scaleclass_datagen::into_database(data.schema.clone(), &train, "census");
    let mut mw =
        Middleware::new(db, "census", "income", MiddlewareConfig::default()).expect("session");
    let grow = GrowConfig {
        min_rows: 40,
        ..GrowConfig::default()
    };
    let out = grow_with_middleware(&mut mw, &grow).expect("grow");
    let dt_scans = mw.db_stats().seq_scans;
    let dt_cm = evaluate(
        |row| out.tree.classify(row),
        &test,
        arity,
        data.class_col,
        2,
    );

    println!("model          scans  test_accuracy");
    println!("naive bayes    {nb_scans:>5}  {}", pct(nb_cm.accuracy()));
    println!("decision tree  {dt_scans:>5}  {}", pct(dt_cm.accuracy()));
    println!("\nNaïve Bayes confusion matrix:\n{}", nb_cm.render());
    println!("Decision tree confusion matrix:\n{}", dt_cm.render());
    println!(
        "Both clients consumed only CC tables — the NB model needed exactly \
         one scan, the tree {} middleware rounds.",
        mw.stats().rounds
    );
}
