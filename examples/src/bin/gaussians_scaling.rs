//! Mixture-of-Gaussians study (§5.1.2): vary dimensionality and class
//! count on the same underlying mixture, and verify that the
//! middleware-grown tree is *identical* to the one a traditional in-memory
//! client grows on the extracted data.
//!
//! ```text
//! cargo run --release -p scaleclass-examples --bin gaussians_scaling
//! ```

use scaleclass::{Middleware, MiddlewareConfig};
use scaleclass_dtree::{
    grow_in_memory, grow_with_middleware, tree_accuracy, trees_structurally_equal, GrowConfig,
};
use scaleclass_examples::pct;
use scaleclass_sqldb::Pred;

fn main() {
    let base = scaleclass_datagen::gaussians::generate(&scaleclass_datagen::GaussianParams {
        dims: 20,
        classes: 6,
        samples_per_class: 800,
        bins: 10,
        seed: 3,
    });
    println!(
        "base mixture: {} rows, {} dims, {} classes",
        base.nrows(),
        base.arity() - 1,
        6
    );

    let grow = GrowConfig {
        min_rows: 20,
        max_depth: Some(8),
        ..GrowConfig::default()
    };

    println!("\n-- dimensionality sweep (projecting the same mixture) --");
    println!("dims\ttrain_acc\ttree_nodes\tserver_scans\tidentical_to_in_memory");
    for dims in [2usize, 5, 10, 20] {
        let view = if dims == base.arity() - 1 {
            base.clone()
        } else {
            base.project(dims)
        };
        let db = scaleclass_datagen::into_database(view.schema.clone(), &view.rows, "g");
        let mut mw =
            Middleware::new(db, "g", "class", MiddlewareConfig::default()).expect("session");
        let out = grow_with_middleware(&mut mw, &grow).expect("grow");

        // The §2.3 baseline client: extract everything, grow in memory.
        let flat = mw.extract_all(Pred::True).expect("extract");
        let attrs: Vec<u16> = mw.attrs().to_vec();
        let local = grow_in_memory(&flat, view.arity(), mw.class_col(), &attrs, &grow);

        let acc = tree_accuracy(&out.tree, &view.rows, view.arity(), view.class_col);
        println!(
            "{dims}\t{}\t{}\t{}\t{}",
            pct(acc),
            out.tree.len(),
            mw.db_stats().seq_scans,
            trees_structurally_equal(&out.tree, &local)
        );
    }

    println!("\n-- class-count sweep (dropping mixture components) --");
    println!("classes\trows\ttrain_acc\ttree_nodes");
    for classes in [2u16, 3, 4, 6] {
        let view = base.restrict_classes(classes);
        let db = scaleclass_datagen::into_database(view.schema.clone(), &view.rows, "g");
        let mut mw =
            Middleware::new(db, "g", "class", MiddlewareConfig::default()).expect("session");
        let out = grow_with_middleware(&mut mw, &grow).expect("grow");
        let acc = tree_accuracy(&out.tree, &view.rows, view.arity(), view.class_col);
        println!(
            "{classes}\t{}\t{}\t{}",
            view.nrows(),
            pct(acc),
            out.tree.len()
        );
    }
}
