//! The full adoption pipeline: import a CSV with string-valued columns,
//! discretize a numeric column with Fayyad–Irani MDL cuts, mine a tree
//! through the middleware, and hand back human-readable decision rules
//! (§2.1: "the leaves, represented as decision rules, are more easily
//! understood by domain experts").
//!
//! ```text
//! cargo run -p scaleclass-examples --bin csv_to_rules
//! ```

use scaleclass::{Middleware, MiddlewareConfig};
use scaleclass_dtree::{
    discretize::{apply_cuts, mdl_cut_points},
    extract_rules, grow_with_middleware, GrowConfig,
};
use scaleclass_sqldb::{import_csv, ColumnMeta, Database, Schema, Table};
use std::io::Cursor;

fn main() {
    // A loan data set: two categorical columns, one numeric (income,
    // thousands), and the class.
    let csv = "\
employment,history,income_k,approved
salaried,good,62,yes
salaried,good,18,no
self,good,95,yes
self,bad,88,no
salaried,bad,71,yes
unemployed,good,12,no
salaried,good,45,yes
self,good,38,no
unemployed,bad,9,no
salaried,bad,22,no
self,good,77,yes
salaried,good,83,yes
unemployed,good,41,no
self,bad,30,no
salaried,bad,96,yes
salaried,good,57,yes
";
    let raw = import_csv(Cursor::new(csv)).expect("CSV import");
    println!("imported {} rows, schema {}", raw.nrows(), raw.schema());

    // Discretize the numeric column with MDL: its imported codes are
    // dictionary indexes, so recover the numbers from the labels.
    let schema = raw.schema().clone();
    let income_col = schema.column_index("income_k").expect("column");
    let class_col = schema.column_index("approved").expect("column");
    let mut incomes = Vec::new();
    let mut classes = Vec::new();
    for row in raw.rows_unaccounted() {
        let label = schema.column(income_col).label(row[income_col]);
        incomes.push(label.parse::<f64>().expect("numeric column"));
        classes.push(row[class_col]);
    }
    let cuts = mdl_cut_points(&incomes, &classes);
    println!("MDL income cuts (k$): {cuts:?}");

    // Rebuild the table with the discretized income column.
    let bin_labels: Vec<String> = {
        let mut ls = Vec::new();
        let mut lo = f64::NEG_INFINITY;
        for &c in &cuts {
            ls.push(format!("{:.0}..{:.0}k", lo.max(0.0), c));
            lo = c;
        }
        ls.push(format!(">{:.0}k", lo));
        ls
    };
    let columns: Vec<ColumnMeta> = schema
        .columns()
        .iter()
        .enumerate()
        .map(|(i, col)| {
            if i == income_col {
                ColumnMeta::with_labels("income_k", bin_labels.clone())
            } else {
                col.clone()
            }
        })
        .collect();
    let mut table = Table::new(Schema::new(columns));
    for (rowi, row) in raw.rows_unaccounted().enumerate() {
        let mut coded = row.to_vec();
        coded[income_col] = apply_cuts(incomes[rowi], &cuts);
        table.insert(&coded).expect("coded row");
    }

    // Mine through the middleware and print the rules.
    let mut db = Database::new();
    db.register_table("loans", table).expect("register");
    let mut mw =
        Middleware::new(db, "loans", "approved", MiddlewareConfig::default()).expect("session");
    let out = grow_with_middleware(&mut mw, &GrowConfig::default()).expect("grow");
    let rules = extract_rules(&out.tree);
    println!("\ndecision tree ({} nodes) as rules:", out.tree.len());
    println!("{rules}");

    // Legend: resolve the coded attribute/value indexes back to labels.
    let final_schema = mw.schema();
    for (i, col) in final_schema.columns().iter().enumerate() {
        let values: Vec<String> = (0..col.cardinality())
            .map(|v| format!("{v}={}", col.label(v)))
            .collect();
        println!("A{i} = {} ({})", col.name(), values.join(", "));
    }
}
