//! The paper's central correctness claim (§3.1): the middleware changes
//! *when and from where* counts are computed, never *what* tree the client
//! produces. We assert the middleware-grown tree is structurally identical
//! to the traditional in-memory client's tree under every middleware
//! policy, budget, and access-path configuration.

use scaleclass::{AuxMode, FileStagingPolicy, Middleware, MiddlewareConfig};
use scaleclass_dtree::{
    grow_in_memory, grow_with_middleware, trees_structurally_equal, DecisionTree, GrowConfig,
    Scorer, SplitKind,
};
use scaleclass_sqldb::{Code, Schema};
use scaleclass_tests::{load, small_census_workload, small_tree_workload};

fn reference_tree(
    schema: &Schema,
    rows: &[Code],
    class_col: u16,
    grow: &GrowConfig,
) -> DecisionTree {
    let attrs: Vec<u16> = (0..schema.arity() as u16)
        .filter(|&c| c != class_col)
        .collect();
    grow_in_memory(rows, schema.arity(), class_col, &attrs, grow)
}

fn middleware_tree(
    schema: &Schema,
    rows: &[Code],
    class_column: &str,
    cfg: MiddlewareConfig,
    grow: &GrowConfig,
) -> DecisionTree {
    let db = load(schema, rows);
    let mut mw = Middleware::new(db, "d", class_column, cfg).expect("session");
    grow_with_middleware(&mut mw, grow).expect("grow").tree
}

fn assert_equivalent(cfg: MiddlewareConfig, grow: &GrowConfig) {
    let (schema, rows, class_col) = small_tree_workload();
    let reference = reference_tree(&schema, &rows, class_col, grow);
    let tree = middleware_tree(&schema, &rows, "class", cfg, grow);
    assert!(
        trees_structurally_equal(&tree, &reference),
        "middleware tree diverged from the in-memory client's tree \
         ({} vs {} nodes)",
        tree.len(),
        reference.len()
    );
    assert!(reference.len() > 10, "workload must actually grow a tree");
}

#[test]
fn default_config_matches_in_memory_client() {
    assert_equivalent(MiddlewareConfig::default(), &GrowConfig::default());
}

#[test]
fn no_caching_matches() {
    let cfg = MiddlewareConfig::builder().memory_caching(false).build();
    assert_equivalent(cfg, &GrowConfig::default());
}

#[test]
fn tiny_budget_with_sql_fallbacks_matches() {
    // A budget this small forces multi-scan frontiers and §4.1.1 fallbacks;
    // the tree must not change.
    let cfg = MiddlewareConfig::builder()
        .memory_budget_bytes(4 * 1024)
        .memory_caching(false)
        .build();
    assert_equivalent(cfg, &GrowConfig::default());
}

#[test]
fn per_node_file_staging_matches() {
    let cfg = MiddlewareConfig::builder()
        .memory_caching(false)
        .file_policy(FileStagingPolicy::PerNode)
        .build();
    assert_equivalent(cfg, &GrowConfig::default());
}

#[test]
fn singleton_file_staging_matches() {
    let cfg = MiddlewareConfig::builder()
        .memory_caching(false)
        .file_policy(FileStagingPolicy::Singleton)
        .build();
    assert_equivalent(cfg, &GrowConfig::default());
}

#[test]
fn hybrid_split_staging_matches() {
    for threshold in [0.25, 0.5, 0.9] {
        let cfg = MiddlewareConfig::builder()
            .memory_caching(false)
            .memory_budget_bytes(64 * 1024)
            .file_policy(FileStagingPolicy::Hybrid {
                split_threshold: threshold,
            })
            .build();
        assert_equivalent(cfg, &GrowConfig::default());
    }
}

#[test]
fn file_staging_plus_memory_caching_matches() {
    let cfg = MiddlewareConfig::builder()
        .memory_budget_bytes(96 * 1024)
        .memory_caching(true)
        .file_policy(FileStagingPolicy::Hybrid {
            split_threshold: 0.5,
        })
        .build();
    assert_equivalent(cfg, &GrowConfig::default());
}

#[test]
fn aux_structures_match() {
    for mode in [AuxMode::TempTable, AuxMode::TidJoin, AuxMode::Keyset] {
        let cfg = MiddlewareConfig::builder()
            .memory_caching(false)
            .memory_budget_bytes(64 * 1024)
            .aux_mode(mode)
            .aux_threshold(0.5) // trigger early to actually exercise the path
            .build();
        assert_equivalent(cfg, &GrowConfig::default());
    }
}

#[test]
fn unfiltered_scans_match() {
    let cfg = MiddlewareConfig::builder()
        .memory_caching(false)
        .push_filters(false)
        .build();
    assert_equivalent(cfg, &GrowConfig::default());
}

#[test]
fn one_node_per_scan_matches() {
    let cfg = MiddlewareConfig::builder()
        .memory_caching(false)
        .max_batch_nodes(Some(1))
        .build();
    assert_equivalent(cfg, &GrowConfig::default());
}

#[test]
fn fifo_ordering_matches() {
    let cfg = MiddlewareConfig::builder()
        .memory_budget_bytes(32 * 1024)
        .memory_caching(false)
        .rule3_smallest_first(false)
        .build();
    assert_equivalent(cfg, &GrowConfig::default());
}

#[test]
fn multiway_splits_match() {
    let grow = GrowConfig {
        split_kind: SplitKind::Multiway,
        ..GrowConfig::default()
    };
    assert_equivalent(MiddlewareConfig::default(), &grow);
    let cfg = MiddlewareConfig::builder()
        .memory_caching(false)
        .file_policy(FileStagingPolicy::Hybrid {
            split_threshold: 0.5,
        })
        .build();
    assert_equivalent(cfg, &grow);
}

#[test]
fn gini_and_gain_ratio_match() {
    for scorer in [Scorer::Gini, Scorer::GainRatio, Scorer::ChiSquare] {
        let grow = GrowConfig {
            scorer,
            ..GrowConfig::default()
        };
        assert_equivalent(MiddlewareConfig::default(), &grow);
    }
}

#[test]
fn census_workload_matches_under_stress_config() {
    let (schema, rows, class_col) = small_census_workload();
    let grow = GrowConfig {
        min_rows: 8,
        ..GrowConfig::default()
    };
    let reference = reference_tree(&schema, &rows, class_col, &grow);
    let cfg = MiddlewareConfig::builder()
        .memory_budget_bytes(24 * 1024)
        .memory_caching(true)
        .file_policy(FileStagingPolicy::Hybrid {
            split_threshold: 0.5,
        })
        .build();
    let tree = middleware_tree(&schema, &rows, "income", cfg, &grow);
    assert!(trees_structurally_equal(&tree, &reference));
    assert!(reference.len() > 50);
}

#[test]
fn depth_capped_growth_matches() {
    let grow = GrowConfig {
        max_depth: Some(3),
        ..GrowConfig::default()
    };
    assert_equivalent(MiddlewareConfig::default(), &grow);
}
