//! From-scratch equivalence for incremental maintenance (DESIGN.md §15):
//! after any stream of INSERT/DELETE/UPDATE mutations, a maintained tree
//! must be split-identical (`trees_same_splits`) to a tree grown from
//! scratch over the table's final state — across sparse/dense CC
//! backends, memory/file staging, and every scan-worker width. With
//! `SCALECLASS_DELTAS` unset nothing changes: the delta path is inert and
//! trees are bit-identical to the non-delta build.

use proptest::prelude::*;
use scaleclass::{FileStagingPolicy, Middleware, MiddlewareConfig};
use scaleclass_dtree::{
    grow_maintainable, grow_with_middleware, maintain, trees_same_splits, DecisionTree, GrowConfig,
    MaintainableTree,
};
use scaleclass_sqldb::{Code, ColumnMeta, Pred, Schema};

/// One mutation against the base table, expressible both through the
/// middleware DML passthroughs and against a client-side row mirror.
#[derive(Debug, Clone)]
enum Mutation {
    Insert(Vec<Code>),
    Delete(Pred),
    Update(Pred, Vec<(usize, Code)>),
}

fn schema_for(cards: &[u16]) -> Schema {
    Schema::new(
        cards
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                let name = if i == cards.len() - 1 {
                    "class".to_string()
                } else {
                    format!("a{i}")
                };
                ColumnMeta::new(name, c)
            })
            .collect(),
    )
}

/// Apply a mutation to the mirror exactly as the database would: deletes
/// and updates affect *every* matching row.
fn apply_to_mirror(rows: &mut Vec<Vec<Code>>, m: &Mutation) {
    match m {
        Mutation::Insert(r) => rows.push(r.clone()),
        Mutation::Delete(pred) => rows.retain(|r| !pred.eval(r)),
        Mutation::Update(pred, assignments) => {
            for r in rows.iter_mut() {
                if pred.eval(r) {
                    for &(col, v) in assignments {
                        r[col] = v;
                    }
                }
            }
        }
    }
}

fn apply_to_db(mw: &Middleware, m: &Mutation) {
    match m {
        Mutation::Insert(r) => mw.insert_row(r).expect("insert"),
        Mutation::Delete(pred) => {
            mw.delete_where(pred).expect("delete");
        }
        Mutation::Update(pred, assignments) => {
            mw.update_where(pred, assignments).expect("update");
        }
    }
}

fn load_db(cards: &[u16], rows: &[Vec<Code>]) -> scaleclass_sqldb::Database {
    let flat: Vec<Code> = rows.iter().flatten().copied().collect();
    scaleclass_datagen::into_database(schema_for(cards), &flat, "d")
}

/// Grow a fresh tree over the mirror's current rows under the default
/// middleware config.
fn rebuild(cards: &[u16], rows: &[Vec<Code>], grow: &GrowConfig) -> DecisionTree {
    let mut mw = Middleware::new(
        load_db(cards, rows),
        "d",
        "class",
        MiddlewareConfig::default(),
    )
    .expect("rebuild session");
    grow_with_middleware(&mut mw, grow)
        .expect("rebuild grow")
        .tree
}

fn assert_matches_rebuild(
    model: &MaintainableTree,
    cards: &[u16],
    rows: &[Vec<Code>],
    context: &str,
) {
    let fresh = rebuild(cards, rows, model.config());
    assert!(
        trees_same_splits(&model.tree, &fresh.clone()),
        "maintained tree diverged from from-scratch rebuild ({context}): \
         {} vs {} nodes",
        model.tree.len(),
        fresh.len()
    );
}

/// Run one maintained session over a mutation stream, comparing against a
/// rebuild after every maintenance round.
fn run_scenario(
    cfg: MiddlewareConfig,
    cards: &[u16],
    initial: &[Vec<Code>],
    stream: &[Vec<Mutation>],
    context: &str,
) {
    let grow = GrowConfig::default();
    let mut rows: Vec<Vec<Code>> = initial.to_vec();
    let mut mw =
        Middleware::new(load_db(cards, &rows), "d", "class", cfg).expect("maintained session");
    let mut model = grow_maintainable(&mut mw, &grow).expect("initial grow");
    assert_matches_rebuild(&model, cards, &rows, context);
    for (round, batch) in stream.iter().enumerate() {
        for m in batch {
            apply_to_db(&mw, m);
            apply_to_mirror(&mut rows, m);
        }
        maintain(&mut mw, &mut model).expect("maintain round");
        assert_matches_rebuild(&model, cards, &rows, &format!("{context}, round {round}"));
    }
}

/// Deterministic base rows: class correlates with a0 and a1, with some
/// contradiction rows so trees have depth.
fn base_rows(cards: &[u16], copies: u16) -> Vec<Vec<Code>> {
    let arity = cards.len();
    let nclasses = cards[arity - 1];
    let mut rows = Vec::new();
    for i in 0..copies {
        for a0 in 0..cards[0] {
            for a1 in 0..cards[1.min(arity - 2)] {
                let mut r: Vec<Code> = (0..arity as u16)
                    .map(|c| {
                        let card = cards[c as usize];
                        (a0 + a1 + c + i) % card
                    })
                    .collect();
                let class = if i % 5 == 4 {
                    (a0 + a1 + 1) % nclasses
                } else {
                    (a0 + a1) % nclasses
                };
                r[arity - 1] = class % nclasses;
                rows.push(r);
            }
        }
    }
    rows
}

/// A fixed mutation stream touching all three DML kinds across rounds.
fn fixed_stream(cards: &[u16]) -> Vec<Vec<Mutation>> {
    let arity = cards.len();
    let nclasses = cards[arity - 1];
    let insert = |a0: u16, class: u16| {
        let mut r: Vec<Code> = (0..arity).map(|c| (a0 + c as u16) % cards[c]).collect();
        r[0] = a0 % cards[0];
        r[arity - 1] = class % nclasses;
        Mutation::Insert(r)
    };
    vec![
        // Round 1: pure inserts.
        vec![insert(0, 1), insert(1, 0), insert(2 % cards[0], 1)],
        // Round 2: a value-targeted delete plus inserts.
        vec![
            Mutation::Delete(Pred::And(vec![
                Pred::Eq { col: 0, value: 0 },
                Pred::Eq {
                    col: 1,
                    value: 1 % cards[1],
                },
            ])),
            insert(1, 1),
        ],
        // Round 3: class-flipping update (logged as delete+insert pairs).
        vec![Mutation::Update(
            Pred::Eq {
                col: 0,
                value: 1 % cards[0],
            },
            vec![(arity - 1, 1 % nclasses)],
        )],
        // Round 4: heavy churn — delete a whole attribute value.
        vec![
            Mutation::Delete(Pred::Eq {
                col: 0,
                value: (cards[0] - 1),
            }),
            insert(0, 0),
            insert(cards[0] - 1, 1),
        ],
    ]
}

/// The full configuration matrix of the acceptance criteria: sparse and
/// dense CC backends × memory and file staging × scan workers 1/2/4/8.
#[test]
fn equivalence_across_backend_staging_worker_matrix() {
    let cards = vec![3u16, 3, 2, 4, 2];
    let initial = base_rows(&cards, 10);
    let stream = fixed_stream(&cards);
    for workers in [1usize, 2, 4, 8] {
        for dense in [false, true] {
            for file_staging in [false, true] {
                let mut b = MiddlewareConfig::builder()
                    .deltas(true)
                    .scan_workers(workers)
                    .cc_dense_max_bytes(if dense { 1 << 30 } else { 0 });
                if file_staging {
                    b = b
                        .memory_caching(false)
                        .file_policy(FileStagingPolicy::PerNode);
                }
                let context =
                    format!("workers={workers} dense={dense} file_staging={file_staging}");
                run_scenario(b.build(), &cards, &initial, &stream, &context);
            }
        }
    }
}

/// With deltas disabled (the `SCALECLASS_DELTAS` default — pinned
/// explicitly so the CI leg that forces the env knob on keeps this
/// coverage) the grown tree is bit-identical to the delta-enabled build,
/// and draining finds no logged events.
#[test]
fn deltas_off_is_bit_identical_and_inert() {
    let cards = vec![3u16, 3, 2, 4, 2];
    let initial = base_rows(&cards, 8);
    let grow = GrowConfig::default();
    let mut mw_off = Middleware::new(
        load_db(&cards, &initial),
        "d",
        "class",
        MiddlewareConfig::builder().deltas(false).build(),
    )
    .expect("session");
    let off = grow_with_middleware(&mut mw_off, &grow).expect("grow").tree;
    let mut mw_on = Middleware::new(
        load_db(&cards, &initial),
        "d",
        "class",
        MiddlewareConfig::builder().deltas(true).build(),
    )
    .expect("session");
    let on = grow_with_middleware(&mut mw_on, &grow).expect("grow").tree;
    assert!(trees_same_splits(&off, &on));
    // No delta log without the knob: mutations drain to nothing.
    mw_off.insert_row(&vec![0u16; cards.len()]).expect("insert");
    let (events, _) = mw_off.drain_deltas();
    assert!(events.is_empty(), "no delta log when deltas are off");
    assert_eq!(mw_off.stats().deltas_applied, 0);
}

/// Maintenance touches the server proportionally to churn: mutations
/// consistent with the learned concept patch leaves in place and scan
/// *zero* server rows, while the initial build had to scan the table.
#[test]
fn concept_consistent_churn_scans_no_server_rows() {
    // class = a0 % 2, pure: every leaf settles exactly.
    let cards = vec![4u16, 3, 2];
    let mut rows: Vec<Vec<Code>> = Vec::new();
    for i in 0..30u16 {
        for a0 in 0..cards[0] {
            rows.push(vec![a0, i % cards[1], a0 % 2]);
        }
    }
    let cfg = MiddlewareConfig::builder().deltas(true).build();
    let mut mw = Middleware::new(load_db(&cards, &rows), "d", "class", cfg).expect("session");
    let before_build = mw.db_stats();
    let mut model = grow_maintainable(&mut mw, &GrowConfig::default()).expect("grow");
    let build_rows = (mw.db_stats() - before_build).rows_scanned;
    assert!(build_rows > 0, "the build must scan the server");
    // ~3% churn, consistent with the concept and symmetric across a0 so
    // tie-broken split scores shift identically everywhere.
    for a0 in 0..cards[0] {
        let r = vec![a0, 1, a0 % 2];
        mw.insert_row(&r).expect("insert");
        rows.push(r);
    }
    let before_maint = mw.db_stats();
    let out = maintain(&mut mw, &mut model).expect("maintain");
    let maint_rows = (mw.db_stats() - before_maint).rows_scanned;
    assert_matches_rebuild(&model, &cards, &rows, "consistent churn");
    assert_eq!(out.nodes_resplit, 0, "consistent churn must not re-split");
    assert!(out.leaf_patches > 0 || out.margin_skips > 0);
    assert_eq!(
        maint_rows, 0,
        "patch-only maintenance must not touch the server \
         (scanned {maint_rows} rows vs {build_rows} for the build)"
    );
}

/// Strategy: a small categorical dataset plus a random mutation stream.
fn dataset_and_stream() -> impl Strategy<Value = (Vec<u16>, Vec<Vec<Code>>, Vec<Vec<Mutation>>)> {
    (
        prop::collection::vec(2u16..=4, 3..=5),
        2u16..=3,
        20usize..=80,
    )
        .prop_flat_map(|(attr_cards, class_card, nrows)| {
            let mut cards = attr_cards;
            cards.push(class_card);
            let arity = cards.len();
            let row_strat = cards
                .iter()
                .map(|&c| 0u16..c)
                .collect::<Vec<_>>()
                .prop_map(|r| r);
            let cards_for_muts = cards.clone();
            let mutation =
                (0u8..=2, prop::collection::vec(any::<u32>(), 4)).prop_map(move |(kind, picks)| {
                    let pick = |i: usize, bound: u16| (picks[i] % u32::from(bound.max(1))) as u16;
                    let col = (picks[0] as usize) % (arity - 1);
                    let card = cards_for_muts[col];
                    match kind {
                        0 => {
                            let r: Vec<Code> =
                                (0..arity).map(|c| pick(c % 4, cards_for_muts[c])).collect();
                            Mutation::Insert(r)
                        }
                        1 => Mutation::Delete(Pred::Eq {
                            col,
                            value: pick(1, card),
                        }),
                        _ => {
                            let target = (picks[2] as usize) % arity;
                            Mutation::Update(
                                Pred::Eq {
                                    col,
                                    value: pick(1, card),
                                },
                                vec![(target, pick(3, cards_for_muts[target]))],
                            )
                        }
                    }
                });
            (
                Just(cards),
                prop::collection::vec(row_strat, nrows),
                prop::collection::vec(prop::collection::vec(mutation, 1..=4), 1..=3),
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random mutation streams preserve from-scratch equivalence, with
    /// the config (backend, staging, workers) itself randomized.
    #[test]
    fn random_streams_match_rebuild(
        (cards, initial, stream) in dataset_and_stream(),
        workers in 1usize..=4,
        dense in any::<bool>(),
        file_staging in any::<bool>(),
    ) {
        let mut b = MiddlewareConfig::builder()
            .deltas(true)
            .scan_workers(workers)
            .cc_dense_max_bytes(if dense { 1 << 30 } else { 0 });
        if file_staging {
            b = b.memory_caching(false).file_policy(FileStagingPolicy::PerNode);
        }
        run_scenario(b.build(), &cards, &initial, &stream, "proptest");
    }
}
