//! Figure-shape assertions (§5.2): the orderings, flattenings, and
//! crossovers the paper reports must hold on the deterministic simulated
//! cost, independent of the host machine.

use scaleclass::{AuxMode, FileStagingPolicy, MiddlewareConfig};
use scaleclass_bench::workloads::{census_workload, fig4_workload, fig7_workload};
use scaleclass_bench::{run_tree_growth, run_tree_growth_via_sql, RunMetrics};
use scaleclass_dtree::GrowConfig;

const KB: u64 = 1024;

fn grow() -> GrowConfig {
    GrowConfig::default()
}

fn run(w: scaleclass_bench::workloads::Workload, class: &str, cfg: MiddlewareConfig) -> RunMetrics {
    run_tree_growth(w.into_db("d"), "d", class, cfg, &grow())
}

/// Figure 4: data caching never loses, and wins decisively once the data
/// fits in middleware memory.
#[test]
fn fig4_caching_dominates_and_flattens() {
    let w = fig4_workload(40, 40.0);
    let data = w.data_bytes();
    for budget in [data / 4, data / 2, data, 2 * data] {
        let caching = run(
            w.clone(),
            "class",
            MiddlewareConfig::builder()
                .memory_budget_bytes(budget)
                .memory_caching(true)
                .build(),
        );
        let plain = run(
            w.clone(),
            "class",
            MiddlewareConfig::builder()
                .memory_budget_bytes(budget)
                .memory_caching(false)
                .build(),
        );
        assert!(
            caching.simulated_cost() <= plain.simulated_cost(),
            "caching lost at budget {budget}: {} vs {}",
            caching.simulated_cost(),
            plain.simulated_cost()
        );
    }
    // With 2x the data size available, one server scan suffices.
    let ample = run(
        w.clone(),
        "class",
        MiddlewareConfig::builder()
            .memory_budget_bytes(2 * data)
            .memory_caching(true)
            .build(),
    );
    assert_eq!(ample.server.seq_scans, 1, "everything staged on first scan");
}

/// Figure 5a: shrinking counts-table memory (no caching) means more scans
/// per frontier, monotonically in cost.
#[test]
fn fig5a_scans_grow_as_memory_shrinks() {
    let w = fig4_workload(40, 40.0);
    let mut last_scans = 0;
    let mut costs = Vec::new();
    for budget in [2048 * KB, 256 * KB, 64 * KB, 16 * KB] {
        let m = run(
            w.clone(),
            "class",
            MiddlewareConfig::builder()
                .memory_budget_bytes(budget)
                .memory_caching(false)
                .build(),
        );
        assert!(
            m.server.seq_scans >= last_scans,
            "scans must not decrease as memory shrinks"
        );
        last_scans = m.server.seq_scans;
        costs.push(m.simulated_cost());
    }
    assert!(
        costs.last().unwrap() > costs.first().unwrap(),
        "tight memory must cost more: {costs:?}"
    );
}

/// Figure 5b: cost grows roughly linearly in the number of rows (fixed
/// generating tree), certainly not quadratically.
#[test]
fn fig5b_row_scaling_is_roughly_linear() {
    let small = run(
        fig4_workload(40, 25.0),
        "class",
        MiddlewareConfig::default(),
    );
    let big = run(
        fig4_workload(40, 100.0),
        "class",
        MiddlewareConfig::default(),
    );
    let ratio = big.simulated_cost() as f64 / small.simulated_cost() as f64;
    assert!(
        (1.5..12.0).contains(&ratio),
        "4x rows should cost ~4x (got {ratio:.2}x)"
    );
}

/// Figure 6: at low memory, hybrid 50% splitting beats the singleton file,
/// and the memory-augmented hybrid is at least as good as plain hybrid at
/// ample memory.
#[test]
fn fig6_hybrid_beats_singleton_at_low_memory() {
    let w = census_workload(6_000);
    let grow = GrowConfig {
        min_rows: 15,
        ..GrowConfig::default()
    };
    let budget = 48 * KB;
    let cost = |policy: FileStagingPolicy, mem: bool| {
        let cfg = MiddlewareConfig::builder()
            .memory_budget_bytes(budget)
            .file_policy(policy)
            .memory_caching(mem)
            .build();
        run_tree_growth(w.clone().into_db("d"), "d", "income", cfg, &grow).simulated_cost()
    };
    let singleton = cost(FileStagingPolicy::Singleton, false);
    let hybrid = cost(
        FileStagingPolicy::Hybrid {
            split_threshold: 0.5,
        },
        false,
    );
    assert!(
        hybrid < singleton,
        "hybrid ({hybrid}) must beat singleton ({singleton}) at low memory"
    );

    let ample = 4096 * KB;
    let cfg_plain = MiddlewareConfig::builder()
        .memory_budget_bytes(ample)
        .file_policy(FileStagingPolicy::Hybrid {
            split_threshold: 0.5,
        })
        .memory_caching(false)
        .build();
    let cfg_mem = MiddlewareConfig::builder()
        .memory_budget_bytes(ample)
        .file_policy(FileStagingPolicy::Hybrid {
            split_threshold: 0.5,
        })
        .memory_caching(true)
        .build();
    let plain = run_tree_growth(w.clone().into_db("d"), "d", "income", cfg_plain, &grow);
    let with_mem = run_tree_growth(w.clone().into_db("d"), "d", "income", cfg_mem, &grow);
    assert!(
        with_mem.simulated_cost() <= plain.simulated_cost(),
        "memory caching must help at ample memory: {} vs {}",
        with_mem.simulated_cost(),
        plain.simulated_cost()
    );
}

/// Figure 7: straightforward SQL counting is worse than the middleware and
/// degrades faster as attributes grow.
#[test]
fn fig7_sql_counting_loses_and_degrades() {
    let mut sql_costs = Vec::new();
    let mut mw_costs = Vec::new();
    for attrs in [6usize, 12, 24] {
        let w = fig7_workload(attrs, 15, 25.0);
        let sql = run_tree_growth_via_sql(w.clone().into_db("d"), "d", "class", &grow());
        let mw = run(
            w,
            "class",
            MiddlewareConfig::builder().memory_caching(false).build(),
        );
        assert!(
            sql.simulated_cost() > mw.simulated_cost(),
            "SQL counting must lose at {attrs} attrs: {} vs {}",
            sql.simulated_cost(),
            mw.simulated_cost()
        );
        sql_costs.push(sql.simulated_cost());
        mw_costs.push(mw.simulated_cost());
    }
    // degradation: SQL cost ratio across the sweep exceeds middleware's
    let sql_ratio = *sql_costs.last().unwrap() as f64 / sql_costs[0] as f64;
    let mw_ratio = *mw_costs.last().unwrap() as f64 / mw_costs[0] as f64;
    assert!(
        sql_ratio > mw_ratio,
        "SQL must degrade faster: {sql_ratio:.2}x vs {mw_ratio:.2}x"
    );
}

/// Figure 8a: on a lop-sided tree, the filtered server cursor beats the
/// static file-based data store under 1999 LAN-vs-disk cost ratios (the
/// paper's conclusion), while modern disk ratios flip the winner.
#[test]
fn fig8a_crossover_depends_on_io_ratio() {
    use scaleclass_bench::workloads::fig8a_workload;
    use scaleclass_sqldb::CostWeights;
    let w = fig8a_workload(4.0, 20, 60.0);
    let cursor = run(
        w.clone(),
        "class",
        MiddlewareConfig::builder().memory_caching(false).build(),
    );
    let file_store = run(
        w,
        "class",
        MiddlewareConfig::builder()
            .memory_caching(false)
            .file_policy(FileStagingPolicy::Singleton)
            .build(),
    );
    let w99 = CostWeights::lan1999();
    assert!(
        cursor.simulated_cost_with(&w99) < file_store.simulated_cost_with(&w99),
        "1999 ratios: cursor must win ({} vs {})",
        cursor.simulated_cost_with(&w99),
        file_store.simulated_cost_with(&w99)
    );
    assert!(
        file_store.simulated_cost() < cursor.simulated_cost(),
        "modern ratios: cheap local disk flips the winner ({} vs {})",
        file_store.simulated_cost(),
        cursor.simulated_cost()
    );
}

/// §5.2.5: server-side index structures are not beneficial — the TID join
/// actively hurts, and even the better structures yield no decisive win.
#[test]
fn idx_structures_do_not_help() {
    let w = census_workload(6_000);
    let grow = GrowConfig {
        min_rows: 15,
        ..GrowConfig::default()
    };
    let metric = |mode: AuxMode| {
        let cfg = MiddlewareConfig::builder()
            .memory_budget_bytes(64 * KB)
            .memory_caching(false)
            .aux_mode(mode)
            .build();
        run_tree_growth(w.clone().into_db("d"), "d", "income", cfg, &grow)
    };
    let off = metric(AuxMode::Off);
    let tid = metric(AuxMode::TidJoin);
    let keyset = metric(AuxMode::Keyset);
    let temp = metric(AuxMode::TempTable);
    assert!(
        tid.simulated_cost() > off.simulated_cost(),
        "TID join overhead must hurt ({} vs {})",
        tid.simulated_cost(),
        off.simulated_cost()
    );
    // "the gain in efficiency due to this technique was limited": under 25%
    // either way, i.e. no decisive win.
    for (name, m) in [("keyset", &keyset), ("temp", &temp)] {
        let ratio = m.simulated_cost_idealized() as f64 / off.simulated_cost() as f64;
        assert!(
            ratio > 0.70,
            "{name} won too decisively ({ratio:.2}) — contradicts §5.2.5"
        );
    }
}

/// §4.3.1: the pushed union filter reduces wire traffic (vs shipping the
/// whole table each scan).
#[test]
fn filter_pushdown_reduces_shipped_rows() {
    let w = fig4_workload(40, 40.0);
    let pushed = run(
        w.clone(),
        "class",
        MiddlewareConfig::builder()
            .memory_caching(false)
            .push_filters(true)
            .build(),
    );
    let shipped = run(
        w,
        "class",
        MiddlewareConfig::builder()
            .memory_caching(false)
            .push_filters(false)
            .build(),
    );
    assert!(
        pushed.server.rows_shipped < shipped.server.rows_shipped,
        "pushdown must ship fewer rows: {} vs {}",
        pushed.server.rows_shipped,
        shipped.server.rows_shipped
    );
    assert!(pushed.simulated_cost() < shipped.simulated_cost());
}

/// The headline claim: batching many nodes into one scan beats
/// one-node-per-scan decisively.
#[test]
fn batching_beats_node_at_a_time() {
    let w = fig4_workload(40, 40.0);
    let batched = run(
        w.clone(),
        "class",
        MiddlewareConfig::builder().memory_caching(false).build(),
    );
    let serial = run(
        w,
        "class",
        MiddlewareConfig::builder()
            .memory_caching(false)
            .max_batch_nodes(Some(1))
            .build(),
    );
    assert!(
        serial.server.seq_scans > 2 * batched.server.seq_scans,
        "one-per-scan must pay many more scans: {} vs {}",
        serial.server.seq_scans,
        batched.server.seq_scans
    );
    assert!(serial.simulated_cost() > batched.simulated_cost());
}

/// Rule 3 is a simplicity heuristic ("For simplicity, we order eligible
/// nodes by the increasing estimated sizes of count tables"), not a
/// guaranteed optimization — the ablation must show both orderings finish
/// with costs in the same ballpark, neither catastrophically worse.
#[test]
fn rule3_ordering_is_no_worse_than_fifo() {
    let w = fig4_workload(80, 30.0);
    let smallest = run(
        w.clone(),
        "class",
        MiddlewareConfig::builder()
            .memory_budget_bytes(48 * KB)
            .memory_caching(false)
            .build(),
    );
    let fifo = run(
        w,
        "class",
        MiddlewareConfig::builder()
            .memory_budget_bytes(48 * KB)
            .memory_caching(false)
            .rule3_smallest_first(false)
            .build(),
    );
    let ratio = smallest.simulated_cost() as f64 / fifo.simulated_cost() as f64;
    assert!(
        (0.4..2.5).contains(&ratio),
        "orderings should be in the same ballpark, got ratio {ratio:.2} \
         ({} vs {} cost, {} vs {} scans)",
        smallest.simulated_cost(),
        fifo.simulated_cost(),
        smallest.server.seq_scans,
        fifo.server.seq_scans
    );
}
