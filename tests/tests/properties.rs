//! Property-based tests over the full stack: random small data sets and
//! predicates, cross-checked between the scan-counting path, the SQL
//! executor, and the in-memory reference.

use proptest::prelude::*;
use scaleclass::sqlgen::{cc_query_sql, cc_via_sql};
use scaleclass::{CountsTable, Middleware, MiddlewareConfig, NodeId};
use scaleclass_dtree::{
    grow_in_memory, grow_with_middleware, trees_structurally_equal, GrowConfig,
};
use scaleclass_sqldb::{execute, Code, Database, Pred, Schema};

/// A random small categorical data set: 2–4 attributes (cardinality 2–4),
/// a class column (cardinality 2–3), and up to 120 rows.
fn dataset() -> impl Strategy<Value = (Vec<u16>, Vec<Code>)> {
    // cards: per-attribute cardinalities, last entry is the class.
    (
        prop::collection::vec(2u16..=4, 2..=4),
        2u16..=3,
        1usize..=120,
    )
        .prop_flat_map(|(attr_cards, class_card, nrows)| {
            let mut cards = attr_cards;
            cards.push(class_card);
            let arity = cards.len();
            let row = cards.iter().map(|&c| 0u16..c).collect::<Vec<_>>();
            (
                Just(cards),
                prop::collection::vec(row, nrows).prop_map(move |rows| {
                    let mut flat = Vec::with_capacity(rows.len() * arity);
                    for r in rows {
                        flat.extend(r);
                    }
                    flat
                }),
            )
        })
}

fn schema_for(cards: &[u16]) -> Schema {
    Schema::new(
        cards
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                let name = if i == cards.len() - 1 {
                    "class".to_string()
                } else {
                    format!("a{i}")
                };
                scaleclass_sqldb::ColumnMeta::new(name, c)
            })
            .collect(),
    )
}

fn db_for(cards: &[u16], flat: &[Code]) -> Database {
    scaleclass_datagen::into_database(schema_for(cards), flat, "d")
}

fn brute_force_cc(flat: &[Code], arity: usize, pred: &Pred, attrs: &[u16]) -> CountsTable {
    let mut cc = CountsTable::new();
    for row in flat.chunks_exact(arity) {
        if pred.eval(row) {
            cc.add_row(row, attrs, (arity - 1) as u16);
        }
    }
    cc
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The SQL executor's UNION-of-GROUP-BY counting agrees with brute
    /// force on arbitrary data and predicates.
    #[test]
    fn sql_counting_matches_brute_force(
        (cards, flat) in dataset(),
        seed in any::<u64>(),
    ) {
        let arity = cards.len();
        let pred = {
            // derive a deterministic predicate from the seed
            let col = (seed as usize) % (arity - 1);
            let value = ((seed >> 8) as u16) % cards[col];
            if seed & 1 == 0 { Pred::Eq { col, value } } else { Pred::NotEq { col, value } }
        };
        let attrs: Vec<u16> = (0..(arity - 1) as u16).collect();
        let db = db_for(&cards, &flat);
        let via_sql = cc_via_sql(&db, "d", &pred, &attrs, (arity - 1) as u16).unwrap();
        let brute = brute_force_cc(&flat, arity, &pred, &attrs);
        prop_assert_eq!(via_sql, brute);
    }

    /// The middleware's scan counting agrees with brute force at the root.
    #[test]
    fn middleware_root_counts_match_brute_force((cards, flat) in dataset()) {
        let arity = cards.len();
        let attrs: Vec<u16> = (0..(arity - 1) as u16).collect();
        let db = db_for(&cards, &flat);
        let mut mw = Middleware::new(db, "d", "class", MiddlewareConfig::default()).unwrap();
        mw.enqueue(mw.root_request(NodeId(0))).unwrap();
        let got = mw.process_next_batch().unwrap().pop().unwrap().cc;
        let brute = brute_force_cc(&flat, arity, &Pred::True, &attrs);
        prop_assert_eq!(got, brute);
    }

    /// Middleware-grown and in-memory-grown trees are identical on random
    /// data, even under a stressy configuration.
    #[test]
    fn trees_are_invariant_to_middleware((cards, flat) in dataset()) {
        let arity = cards.len();
        let attrs: Vec<u16> = (0..(arity - 1) as u16).collect();
        let grow = GrowConfig::default();
        let reference = grow_in_memory(&flat, arity, (arity - 1) as u16, &attrs, &grow);

        let cfg = MiddlewareConfig::builder()
            .memory_budget_bytes(2 * 1024)
            .memory_caching(true)
            .build();
        let db = db_for(&cards, &flat);
        let mut mw = Middleware::new(db, "d", "class", cfg).unwrap();
        let tree = grow_with_middleware(&mut mw, &grow).unwrap().tree;
        prop_assert!(trees_structurally_equal(&tree, &reference));
    }

    /// The generated CC SQL text parses and executes to the same counts the
    /// AST path produces (lexer/parser/executor round trip).
    #[test]
    fn cc_sql_text_round_trips((cards, flat) in dataset()) {
        let arity = cards.len();
        let attrs: Vec<u16> = (0..(arity - 1) as u16).collect();
        let mut db = db_for(&cards, &flat);
        let schema = db.table("d").unwrap().schema().clone();
        let pred = Pred::NotEq { col: 0, value: 0 };
        let sql = cc_query_sql("d", &schema, &pred, &attrs, (arity - 1) as u16);
        let mut rs = execute(&mut db, &sql).unwrap().into_rows().unwrap();
        rs.sort();

        // Rebuild a counts table from the result set and compare.
        let mut from_text = CountsTable::new();
        for row in &rs.rows {
            let attr_name = row[0].as_str().unwrap();
            let attr = schema.column_index(attr_name).unwrap() as u16;
            let value = row[1].as_int().unwrap() as Code;
            let class = row[2].as_int().unwrap() as Code;
            let n = row[3].as_int().unwrap();
            from_text.add_aggregate(attr, value, class, n);
        }
        if let Some(&first) = attrs.first() {
            from_text.set_totals_from_attr(first);
        }
        let brute = brute_force_cc(&flat, arity, &pred, &attrs);
        prop_assert_eq!(from_text, brute);
    }

    /// Predicate evaluation agrees with the SQL WHERE path: COUNT(*) via
    /// SQL equals a brute-force eval count.
    #[test]
    fn predicate_eval_matches_sql_where(
        (cards, flat) in dataset().prop_flat_map(|(cards, flat)| {
            (Just(cards), Just(flat))
        }),
        atoms in prop::collection::vec((0usize..3, any::<bool>(), any::<u16>()), 0..=3),
    ) {
        let arity = cards.len();
        let pred = Pred::and(
            atoms
                .into_iter()
                .map(|(col, eq, v)| {
                    let col = col % (arity - 1);
                    let value = v % cards[col];
                    if eq { Pred::Eq { col, value } } else { Pred::NotEq { col, value } }
                })
                .collect(),
        );
        let mut db = db_for(&cards, &flat);
        let schema = db.table("d").unwrap().schema().clone();
        let sql = format!("SELECT COUNT(*) FROM d WHERE {}", pred.to_sql(&schema));
        let rs = execute(&mut db, &sql).unwrap().into_rows().unwrap();
        let via_sql = rs.rows[0][0].as_int().unwrap();
        let brute = flat.chunks_exact(arity).filter(|r| pred.eval(r)).count() as u64;
        prop_assert_eq!(via_sql, brute);
    }
}
