//! End-to-end adoption pipelines: CSV import → middleware mining,
//! numeric data → MDL discretization → mining, and database persistence
//! across sessions.

use scaleclass::{Middleware, MiddlewareConfig};
use scaleclass_dtree::{
    cross_validate, grow_in_memory, grow_with_middleware, trees_structurally_equal, Discretizer,
    GrowConfig, NaiveBayes,
};
use scaleclass_sqldb::{
    import_csv, open_database, save_database, Code, ColumnMeta, Database, Schema,
};
use std::io::Cursor;

fn weather_csv() -> &'static str {
    "outlook,humidity,wind,play\n\
     sunny,high,weak,no\n\
     sunny,high,strong,no\n\
     overcast,high,weak,yes\n\
     rain,high,weak,yes\n\
     rain,normal,weak,yes\n\
     rain,normal,strong,no\n\
     overcast,normal,strong,yes\n\
     sunny,high,weak,no\n\
     sunny,normal,weak,yes\n\
     rain,high,weak,yes\n\
     sunny,normal,strong,yes\n\
     overcast,high,strong,yes\n\
     overcast,normal,weak,yes\n\
     rain,high,strong,no\n"
}

#[test]
fn csv_to_middleware_mining() {
    let table = import_csv(Cursor::new(weather_csv())).unwrap();
    let schema = table.schema().clone();
    let mut db = Database::new();
    db.register_table("weather", table).unwrap();
    let mut mw = Middleware::new(db, "weather", "play", MiddlewareConfig::default()).unwrap();
    let out = grow_with_middleware(&mut mw, &GrowConfig::default()).unwrap();
    // The classic result: outlook=overcast is always "play".
    let overcast = schema.column(0).code_of("overcast").unwrap();
    let yes = schema.column(3).code_of("yes").unwrap();
    assert_eq!(out.tree.classify(&[overcast, 0, 0, 0]), yes);
    assert!(out.tree.len() > 3);
}

#[test]
fn persistence_survives_a_session_boundary() {
    let path = std::env::temp_dir().join(format!("scaleclass-pipeline-{}.db", std::process::id()));
    // Session 1: build + save.
    let tree_a = {
        let table = import_csv(Cursor::new(weather_csv())).unwrap();
        let mut db = Database::new();
        db.register_table("weather", table).unwrap();
        save_database(&db, &path).unwrap();
        let mut mw = Middleware::new(db, "weather", "play", MiddlewareConfig::default()).unwrap();
        grow_with_middleware(&mut mw, &GrowConfig::default())
            .unwrap()
            .tree
    };
    // Session 2: load + rebuild — identical tree.
    let db = open_database(&path).unwrap();
    std::fs::remove_file(&path).unwrap();
    let mut mw = Middleware::new(db, "weather", "play", MiddlewareConfig::default()).unwrap();
    let tree_b = grow_with_middleware(&mut mw, &GrowConfig::default())
        .unwrap()
        .tree;
    assert!(trees_structurally_equal(&tree_a, &tree_b));
}

#[test]
fn numeric_pipeline_discretize_then_mine() {
    // Two informative numeric features (class = x0 > 0 XOR-free), one noise.
    let mut numeric = Vec::new();
    let mut classes: Vec<Code> = Vec::new();
    for i in 0..400 {
        let x0 = (i as f64 / 400.0) * 20.0 - 10.0;
        let x1 = ((i * 7) % 400) as f64 / 40.0;
        let x2 = ((i * 13) % 17) as f64;
        numeric.extend_from_slice(&[x0, x1, x2]);
        classes.push(u16::from(x0 > 0.0 && x1 < 5.0));
    }
    let disc = Discretizer::fit_mdl(&numeric, 3, &classes, 6);
    let cards = disc.cardinalities();

    let mut columns: Vec<ColumnMeta> = cards
        .iter()
        .enumerate()
        .map(|(i, &c)| ColumnMeta::new(format!("x{i}"), c))
        .collect();
    columns.push(ColumnMeta::new("class", 2));
    let schema = Schema::new(columns);

    let mut flat: Vec<Code> = Vec::new();
    for (row, &class) in numeric.chunks_exact(3).zip(&classes) {
        flat.extend(disc.transform_row(row));
        flat.push(class);
    }
    let db = scaleclass_datagen::into_database(schema, &flat, "d");
    let mut mw = Middleware::new(db, "d", "class", MiddlewareConfig::default()).unwrap();
    let out = grow_with_middleware(&mut mw, &GrowConfig::default()).unwrap();
    let acc = scaleclass_dtree::tree_accuracy(&out.tree, &flat, 4, 3);
    assert!(acc > 0.97, "discretized pipeline accuracy {acc}");
}

#[test]
fn cross_validated_clients_agree_on_census() {
    let data = scaleclass_datagen::census::generate(&scaleclass_datagen::CensusParams {
        rows: 3_000,
        seed: 9,
    });
    let arity = data.arity();
    let grow = GrowConfig {
        min_rows: 15,
        ..GrowConfig::default()
    };
    let attrs: Vec<u16> = (0..(arity - 1) as u16).collect();

    let tree_accs = cross_validate(&data.rows, arity, data.class_col, 3, |train| {
        let tree = grow_in_memory(train, arity, data.class_col, &attrs, &grow);
        move |row: &[Code]| tree.classify(row)
    });
    let nb_accs = cross_validate(&data.rows, arity, data.class_col, 3, |train| {
        let mut cc = scaleclass::CountsTable::new();
        for row in train.chunks_exact(arity) {
            cc.add_row(row, &attrs, data.class_col);
        }
        let nb = NaiveBayes::from_cc(&cc, &attrs);
        move |row: &[Code]| nb.classify(row)
    });
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let (t, n) = (mean(&tree_accs), mean(&nb_accs));
    assert!(t > 0.80, "tree CV accuracy {t}");
    assert!(n > 0.80, "NB CV accuracy {n}");
    assert!(
        (t - n).abs() < 0.15,
        "clients should be in the same band: {t} vs {n}"
    );
}

#[test]
fn subspace_forest_plugs_into_the_middleware() {
    use scaleclass_dtree::{grow_forest_with_middleware, ForestConfig};
    let data = scaleclass_datagen::census::generate(&scaleclass_datagen::CensusParams {
        rows: 4_000,
        seed: 17,
    });
    let arity = data.arity();
    let (train, test) = scaleclass_datagen::train_test_split(&data.rows, arity, 0.3, 2);
    let grow = GrowConfig {
        min_rows: 25,
        ..GrowConfig::default()
    };

    // Single tree.
    let db = scaleclass_datagen::into_database(data.schema.clone(), &train, "census");
    let mut mw = Middleware::new(db, "census", "income", MiddlewareConfig::default()).unwrap();
    let tree = grow_with_middleware(&mut mw, &grow).unwrap().tree;
    let tree_acc = scaleclass_dtree::tree_accuracy(&tree, &test, arity, data.class_col);

    // Subspace forest of 9 members through the same middleware stack.
    let db = scaleclass_datagen::into_database(data.schema.clone(), &train, "census");
    let mw = Middleware::new(db, "census", "income", MiddlewareConfig::default()).unwrap();
    let (forest, mw) = grow_forest_with_middleware(
        mw,
        &ForestConfig {
            trees: 9,
            grow: grow.clone(),
            ..ForestConfig::default()
        },
    )
    .unwrap();
    assert_eq!(forest.len(), 9);
    let correct = test
        .chunks_exact(arity)
        .filter(|r| forest.classify(r) == r[data.class_col as usize])
        .count();
    let forest_acc = correct as f64 / (test.len() / arity) as f64;

    assert!(forest_acc > 0.75, "forest accuracy {forest_acc}");
    assert!(
        forest_acc >= tree_acc - 0.05,
        "forest ({forest_acc}) should be competitive with the tree ({tree_acc})"
    );
    // Every member went through the backend — scans accumulated.
    assert!(mw.db_stats().seq_scans >= 9);
}
