//! Soak suite: the same invariants as the fast integration tests, at
//! sizes closer to the paper's. Run with
//! `cargo test --workspace --release -- --ignored`.

use scaleclass::{FileStagingPolicy, Middleware, MiddlewareConfig};
use scaleclass_datagen::{census, random_tree, CensusParams, RandomTreeParams};
use scaleclass_dtree::{
    grow_in_memory, grow_with_middleware, trees_structurally_equal, GrowConfig,
};

#[test]
#[ignore = "soak: ~1 minute"]
fn equivalence_holds_at_scale_under_every_policy() {
    let d = random_tree::generate(&RandomTreeParams {
        leaves: 200,
        attributes: 25,
        classes: 10,
        cases_per_leaf: 120.0,
        ..RandomTreeParams::default()
    });
    let attrs: Vec<u16> = (0..25).collect();
    let grow = GrowConfig::default();
    let reference = grow_in_memory(&d.rows, d.arity(), d.class_col, &attrs, &grow);
    assert!(reference.len() > 1000, "grew {} nodes", reference.len());

    let configs = vec![
        MiddlewareConfig::default(),
        MiddlewareConfig::builder()
            .memory_budget_bytes(64 * 1024)
            .memory_caching(false)
            .build(),
        MiddlewareConfig::builder()
            .memory_budget_bytes(256 * 1024)
            .memory_caching(true)
            .file_policy(FileStagingPolicy::Hybrid {
                split_threshold: 0.5,
            })
            .build(),
        MiddlewareConfig::builder()
            .memory_budget_bytes(128 * 1024)
            .memory_caching(false)
            .file_policy(FileStagingPolicy::PerNode)
            .build(),
    ];
    for (i, cfg) in configs.into_iter().enumerate() {
        let db = scaleclass_datagen::into_database(d.schema.clone(), &d.rows, "d");
        let mut mw = Middleware::new(db, "d", "class", cfg).unwrap();
        let tree = grow_with_middleware(&mut mw, &grow).unwrap().tree;
        assert!(
            trees_structurally_equal(&tree, &reference),
            "config {i} diverged"
        );
    }
}

#[test]
#[ignore = "soak: ~30 seconds"]
fn census_at_scale_is_accurate_and_memory_honest() {
    let d = census::generate(&CensusParams {
        rows: 100_000,
        seed: 5,
    });
    let arity = d.arity();
    let (train, test) = scaleclass_datagen::train_test_split(&d.rows, arity, 0.25, 6);
    let budget = 256 * 1024u64;
    let db = scaleclass_datagen::into_database(d.schema.clone(), &train, "census");
    let cfg = MiddlewareConfig::builder()
        .memory_budget_bytes(budget)
        .memory_caching(true)
        .file_policy(FileStagingPolicy::Hybrid {
            split_threshold: 0.5,
        })
        .build();
    let mut mw = Middleware::new(db, "census", "income", cfg).unwrap();
    let grow = GrowConfig {
        min_rows: 50,
        ..GrowConfig::default()
    };
    let out = grow_with_middleware(&mut mw, &grow).unwrap();
    let acc = scaleclass_dtree::tree_accuracy(&out.tree, &test, arity, d.class_col);
    assert!(acc > 0.85, "holdout accuracy {acc}");
    assert!(
        mw.stats().peak_memory_bytes <= budget + 8 * 1024,
        "peak {} over budget {budget}",
        mw.stats().peak_memory_bytes
    );
    // staging actually happened at this scale
    assert!(mw.stats().files_created >= 1);
}

#[test]
#[ignore = "soak: ~1 minute"]
fn five_hundred_thousand_rows_scale_linearly() {
    let small = random_tree::generate(&RandomTreeParams {
        leaves: 100,
        cases_per_leaf: 500.0,
        ..RandomTreeParams::default()
    });
    let big = random_tree::generate(&RandomTreeParams {
        leaves: 100,
        cases_per_leaf: 2500.0,
        ..RandomTreeParams::default()
    });
    let run = |d: &random_tree::GeneratedData| {
        let db = scaleclass_datagen::into_database(d.schema.clone(), &d.rows, "d");
        let mut mw = Middleware::new(db, "d", "class", MiddlewareConfig::default()).unwrap();
        grow_with_middleware(&mut mw, &GrowConfig::default()).unwrap();
        mw.db_stats().simulated_cost()
    };
    let (cs, cb) = (run(&small), run(&big));
    let ratio = cb as f64 / cs as f64;
    assert!(
        (2.0..15.0).contains(&ratio),
        "5x rows gave {ratio:.1}x cost ({cs} -> {cb})"
    );
}
