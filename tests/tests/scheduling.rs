//! End-to-end scheduler and staging behaviour: scan-source migration
//! (S → I → L), eviction hygiene, and the Figure 3 protocol.

use scaleclass::{DataLocation, FileStagingPolicy, Middleware, MiddlewareConfig};
use scaleclass_dtree::{grow_with_middleware, GrowConfig, NodeState};
use scaleclass_tests::{load, small_census_workload, small_tree_workload};

#[test]
fn data_migrates_from_server_to_memory() {
    let (schema, rows, _) = small_tree_workload();
    let db = load(&schema, &rows);
    let mut mw = Middleware::new(db, "d", "class", MiddlewareConfig::default()).unwrap();
    let out = grow_with_middleware(&mut mw, &GrowConfig::default()).unwrap();
    let (server, file, memory) = out.tree.source_mix();
    assert!(server >= 1, "the root is always a server scan");
    assert_eq!(file, 0, "file staging disabled by default");
    assert!(
        memory > server,
        "with ample memory most nodes are served from memory \
         (S={server} I={file} L={memory})"
    );
    // The root itself was served from the server.
    assert_eq!(out.tree.root().unwrap().source, Some(DataLocation::Server));
}

#[test]
fn file_staging_migrates_through_files() {
    let (schema, rows, _) = small_tree_workload();
    let db = load(&schema, &rows);
    let cfg = MiddlewareConfig::builder()
        .memory_caching(false)
        .file_policy(FileStagingPolicy::Hybrid {
            split_threshold: 0.5,
        })
        .build();
    let mut mw = Middleware::new(db, "d", "class", cfg).unwrap();
    let out = grow_with_middleware(&mut mw, &GrowConfig::default()).unwrap();
    let (server, file, memory) = out.tree.source_mix();
    assert_eq!(server, 1, "a single server scan stages the singleton file");
    assert!(file > 0, "descendants served from middleware files");
    assert_eq!(memory, 0);
    assert!(mw.stats().files_created >= 1);
    assert_eq!(mw.db_stats().seq_scans, 1);
}

#[test]
fn staging_directory_is_cleaned_up() {
    let (schema, rows, _) = small_tree_workload();
    let dir = std::env::temp_dir().join(format!(
        "scaleclass-test-stage-{}-{}",
        std::process::id(),
        line!()
    ));
    let cfg = MiddlewareConfig::builder()
        .memory_caching(false)
        .file_policy(FileStagingPolicy::PerNode)
        .staging_dir(&dir)
        .build();
    {
        let db = load(&schema, &rows);
        let mut mw = Middleware::new(db, "d", "class", cfg).unwrap();
        grow_with_middleware(&mut mw, &GrowConfig::default()).unwrap();
        assert!(mw.stats().files_created > 10, "per-node staging made files");
    }
    // The user-supplied directory survives, but our files are gone.
    let leftovers = std::fs::read_dir(&dir).map(|it| it.count()).unwrap_or(0);
    assert_eq!(leftovers, 0, "staged files must be deleted");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn files_are_evicted_as_subtrees_complete() {
    let (schema, rows, _) = small_census_workload();
    let db = load(&schema, &rows);
    let cfg = MiddlewareConfig::builder()
        .memory_budget_bytes(32 * 1024)
        .memory_caching(false)
        .file_policy(FileStagingPolicy::PerNode)
        .build();
    let mut mw = Middleware::new(db, "d", "income", cfg).unwrap();
    let grow = GrowConfig {
        min_rows: 20,
        ..GrowConfig::default()
    };
    grow_with_middleware(&mut mw, &grow).unwrap();
    let s = mw.stats();
    assert!(
        s.files_deleted > 0,
        "completed subtrees must release their staging files"
    );
    assert!(s.files_created >= s.files_deleted);
}

#[test]
fn protocol_counts_match_tree_structure() {
    let (schema, rows, _) = small_tree_workload();
    let db = load(&schema, &rows);
    let mut mw = Middleware::new(db, "d", "class", MiddlewareConfig::default()).unwrap();
    let out = grow_with_middleware(&mut mw, &GrowConfig::default()).unwrap();
    // Every request produced exactly one served result…
    assert_eq!(out.requests_issued, mw.stats().requests_served);
    // …and requests = nodes that were not immediate leaves.
    let requested_nodes = out
        .tree
        .nodes()
        .iter()
        .filter(|n| n.source.is_some())
        .count() as u64;
    assert_eq!(out.requests_issued, requested_nodes);
    // Internal nodes all carry a source tag (their CC was computed).
    for n in out.tree.nodes() {
        if matches!(n.state, NodeState::Partitioned { .. }) {
            assert!(n.source.is_some(), "partitioned node {} lacks a tag", n.id);
        }
    }
    // No pending work or stranded state.
    assert!(!mw.has_pending());
}

#[test]
fn class_counts_are_conserved_down_the_tree() {
    let (schema, rows, class_col) = small_tree_workload();
    let db = load(&schema, &rows);
    let mut mw = Middleware::new(db, "d", "class", MiddlewareConfig::default()).unwrap();
    let out = grow_with_middleware(&mut mw, &GrowConfig::default()).unwrap();
    let total_rows = (rows.len() / schema.arity()) as u64;
    assert_eq!(out.tree.root().unwrap().rows, total_rows);
    for n in out.tree.nodes() {
        let child_sum: u64 = n.children.iter().map(|&c| out.tree.node(c).rows).sum();
        if !n.children.is_empty() {
            assert_eq!(child_sum, n.rows, "children of node {} leak rows", n.id);
        }
        let class_sum: u64 = n.class_counts.iter().map(|&(_, k)| k).sum();
        assert_eq!(class_sum, n.rows);
    }
    // Leaf rows partition the data set.
    let leaf_sum: u64 = out.tree.leaves().map(|l| l.rows).sum();
    assert_eq!(leaf_sum, total_rows);
    let _ = class_col;
}

#[test]
fn memory_pressure_eviction_keeps_growth_correct() {
    // Budget forces staged sets to be sacrificed for counting; growth must
    // complete and the middleware must report the evictions.
    let (schema, rows, _) = small_census_workload();
    let db = load(&schema, &rows);
    let cfg = MiddlewareConfig::builder()
        .memory_budget_bytes(20 * 1024)
        .memory_caching(true)
        .build();
    let mut mw = Middleware::new(db, "d", "income", cfg).unwrap();
    let grow = GrowConfig {
        min_rows: 10,
        ..GrowConfig::default()
    };
    let out = grow_with_middleware(&mut mw, &grow).unwrap();
    assert!(out.tree.len() > 50);
    let s = mw.stats();
    assert!(
        s.peak_memory_bytes <= 20 * 1024,
        "modelled memory exceeded the budget: {}",
        s.peak_memory_bytes
    );
}

#[test]
fn peak_memory_respects_budget_across_configs() {
    let (schema, rows, _) = small_tree_workload();
    for budget in [16 * 1024u64, 64 * 1024, 512 * 1024] {
        for caching in [true, false] {
            let db = load(&schema, &rows);
            let cfg = MiddlewareConfig::builder()
                .memory_budget_bytes(budget)
                .memory_caching(caching)
                .build();
            let mut mw = Middleware::new(db, "d", "class", cfg).unwrap();
            grow_with_middleware(&mut mw, &GrowConfig::default()).unwrap();
            let peak = mw.stats().peak_memory_bytes;
            // The only allowed excursion is the single-node minimum
            // admission (§4.1.1 handles it by fallback, which releases
            // memory immediately), so the peak may only modestly exceed
            // tiny budgets.
            assert!(
                peak <= budget.max(8 * 1024) + 4 * 1024,
                "budget {budget} caching {caching}: peak {peak}"
            );
        }
    }
}

#[test]
fn staging_io_failure_surfaces_as_error_not_panic() {
    let (schema, rows, _) = small_tree_workload();
    let dir =
        std::env::temp_dir().join(format!("scaleclass-vanishing-stage-{}", std::process::id()));
    let cfg = MiddlewareConfig::builder()
        .memory_caching(false)
        .file_policy(FileStagingPolicy::Singleton)
        .staging_dir(&dir)
        .build();
    let db = load(&schema, &rows);
    let mut mw = Middleware::new(db, "d", "class", cfg).unwrap();
    // First batch stages the singleton file successfully.
    mw.enqueue(mw.root_request(scaleclass::NodeId(0))).unwrap();
    let first = mw.process_next_batch().unwrap();
    assert_eq!(first.len(), 1);
    // The staging directory vanishes (disk failure / cleanup race)…
    std::fs::remove_dir_all(&dir).unwrap();
    // …so the next file-sourced batch must fail cleanly, not panic.
    let root_lineage = scaleclass::Lineage::root(scaleclass::NodeId(0));
    mw.enqueue(scaleclass::CcRequest {
        lineage: root_lineage.child(
            scaleclass::NodeId(1),
            scaleclass_sqldb::Pred::Eq { col: 0, value: 0 },
        ),
        attrs: vec![1],
        class_col: mw.class_col(),
        rows: 10,
        parent_rows: rows.len() as u64 / schema.arity() as u64,
        parent_cards: vec![4],
    })
    .unwrap();
    let outcome = mw.process_next_batch();
    assert!(
        matches!(outcome, Err(scaleclass::MwError::Staging(_))),
        "expected a staging error, got {outcome:?}"
    );
}
