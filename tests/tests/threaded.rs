//! The asynchronous Figure 3 protocol: a client thread and a middleware
//! thread exchanging request/result batches must grow the same tree the
//! synchronous loop does.

use scaleclass::concurrent::spawn;
use scaleclass::{CcRequest, Middleware, MiddlewareConfig, NodeId};
use scaleclass_dtree::{
    decide, derive_children, grow::immediate_leaf, grow_with_middleware, trees_structurally_equal,
    Decision, DecisionTree, GrowConfig, NodeState, TreeNode,
};
use scaleclass_tests::{load, small_tree_workload};
use std::collections::HashMap;

/// A client driving the threaded middleware: queue requests, consume
/// whatever batches come back, in whatever order.
fn grow_threaded(mw: Middleware, config: &GrowConfig) -> DecisionTree {
    let class_col = mw.class_col();
    let root_req = mw.root_request(NodeId(0));
    let handle = spawn(mw);

    let mut tree = DecisionTree::new();
    tree.push(TreeNode {
        id: 0,
        parent: None,
        edge: None,
        depth: 0,
        state: NodeState::Active,
        class_counts: Vec::new(),
        rows: root_req.rows,
        children: Vec::new(),
        source: None,
    });
    let mut lineages = HashMap::new();
    let mut attrs_of = HashMap::new();
    lineages.insert(0usize, root_req.lineage.clone());
    attrs_of.insert(0usize, root_req.attrs.clone());
    let mut outstanding = 1usize;
    handle.enqueue(root_req).unwrap();

    while outstanding > 0 {
        let batch = handle
            .wait_results()
            .expect("middleware alive")
            .expect("no middleware error");
        for f in batch {
            outstanding -= 1;
            let idx = f.node.0 as usize;
            let lineage = lineages.remove(&idx).unwrap();
            let attrs = attrs_of.remove(&idx).unwrap();
            let depth = tree.node(idx).depth;
            {
                let n = tree.node_mut(idx);
                n.class_counts = f.cc.class_distribution().collect();
                n.rows = f.cc.total();
                n.source = Some(f.source);
            }
            match decide(&f.cc, &attrs, depth, config) {
                Decision::Leaf { class } => {
                    tree.node_mut(idx).state = NodeState::Leaf { class };
                }
                Decision::Split(split) => {
                    let specs = derive_children(&f.cc, &split, &attrs);
                    tree.node_mut(idx).state = NodeState::Partitioned { split };
                    for spec in specs {
                        let leaf_now = immediate_leaf(&spec, depth + 1, config);
                        let state = if leaf_now {
                            NodeState::Leaf {
                                class: spec
                                    .class_counts
                                    .iter()
                                    .max_by_key(|&&(_, n)| n)
                                    .map(|&(c, _)| c)
                                    .unwrap_or(0),
                            }
                        } else {
                            NodeState::Active
                        };
                        let child = tree.push(TreeNode {
                            id: 0,
                            parent: Some(idx),
                            edge: Some(spec.edge),
                            depth: depth + 1,
                            state,
                            class_counts: spec.class_counts.clone(),
                            rows: spec.rows,
                            children: Vec::new(),
                            source: None,
                        });
                        if !leaf_now {
                            let lin = lineage.child(NodeId(child as u64), spec.edge_pred.clone());
                            lineages.insert(child, lin.clone());
                            attrs_of.insert(child, spec.attrs.clone());
                            handle
                                .enqueue(CcRequest {
                                    lineage: lin,
                                    attrs: spec.attrs,
                                    class_col,
                                    rows: spec.rows,
                                    parent_rows: f.cc.total(),
                                    parent_cards: spec.parent_cards,
                                })
                                .unwrap();
                            outstanding += 1;
                        }
                    }
                }
            }
        }
    }
    handle.shutdown().expect("clean middleware shutdown");
    tree
}

#[test]
fn threaded_growth_matches_synchronous_growth() {
    let (schema, rows, _) = small_tree_workload();
    let config = GrowConfig::default();

    let db = load(&schema, &rows);
    let mw = Middleware::new(db, "d", "class", MiddlewareConfig::default()).unwrap();
    let threaded = grow_threaded(mw, &config);

    let db = load(&schema, &rows);
    let mut mw = Middleware::new(db, "d", "class", MiddlewareConfig::default()).unwrap();
    let sync = grow_with_middleware(&mut mw, &config).unwrap().tree;

    // The paper: "This approach does not affect the decision tree that is
    // finally produced by the classifier."
    assert!(trees_structurally_equal(&threaded, &sync));
    assert!(sync.len() > 10);
}

#[test]
fn threaded_growth_under_tight_memory_matches() {
    let (schema, rows, _) = small_tree_workload();
    let config = GrowConfig::default();
    let cfg = MiddlewareConfig::builder()
        .memory_budget_bytes(16 * 1024)
        .memory_caching(false)
        .build();

    let db = load(&schema, &rows);
    let mw = Middleware::new(db, "d", "class", cfg.clone()).unwrap();
    let threaded = grow_threaded(mw, &config);

    let db = load(&schema, &rows);
    let mut mw = Middleware::new(db, "d", "class", cfg).unwrap();
    let sync = grow_with_middleware(&mut mw, &config).unwrap().tree;

    assert!(trees_structurally_equal(&threaded, &sync));
}
