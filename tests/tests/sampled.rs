//! Sampled counting (DESIGN.md §13) integration properties.
//!
//! Three guarantees, enforced end to end through the real middleware:
//!
//! 1. **Degenerate fractions are exact.** `sampled_counting(1.0)` (and
//!    `0.0` = off) is bit-identical to the exact path — same tree, same
//!    logical counters — across worker counts, counting backends, and
//!    staging modes, because the scheduler only plans a sample for
//!    `0 < fraction < 1`.
//! 2. **Seeded determinism.** Block admission hashes a fixed seed with
//!    the block index, so rerunning the same configuration — at any
//!    worker count — reproduces the tree and every logical counter.
//! 3. **Escalation restores exactness.** On margin-thin data (twin
//!    attributes whose splits tie) every sampled split fails the
//!    confidence separation, escalates to an exact scan, and the final
//!    tree is identical to the exact-mode tree.

use scaleclass::{FileStagingPolicy, Middleware, MiddlewareConfig, MiddlewareStats};
use scaleclass_dtree::{grow_with_middleware, trees_structurally_equal, DecisionTree, GrowConfig};
use scaleclass_sqldb::{Code, Schema};
use scaleclass_tests::{load, small_tree_workload};

/// One full middleware-driven grow; returns the tree, the middleware
/// counters, and the grow loop's (sampled_accepts, escalations).
fn grow(
    schema: &Schema,
    rows: &[Code],
    class: &str,
    cfg: MiddlewareConfig,
    gc: &GrowConfig,
) -> (DecisionTree, MiddlewareStats, u64, u64) {
    let db = load(schema, rows);
    let mut mw = Middleware::new(db, "d", class, cfg).expect("session");
    let out = grow_with_middleware(&mut mw, gc).expect("grow");
    (out.tree, *mw.stats(), out.sampled_accepts, out.escalations)
}

/// Project the deterministic counters out of a stats record: drop
/// wall-clock timing and pipeline-shape counters that legitimately vary
/// with worker count (same projection as `crates/core/tests/props.rs`).
fn logical(s: &MiddlewareStats) -> MiddlewareStats {
    MiddlewareStats {
        parallel_scans: 0,
        sharded_file_scans: 0,
        scan_blocks: 0,
        scan_nanos: 0,
        scan_worker_rows_max: 0,
        kernel_nanos: 0,
        blocks_counted: 0,
        block_fallback_rows: 0,
        kernel_validate_nanos: 0,
        kernel_accumulate_nanos: 0,
        ..*s
    }
}

#[test]
fn full_sample_is_bit_identical_to_exact() {
    let (schema, rows, _) = small_tree_workload();
    let gc = GrowConfig::default();
    for workers in [1usize, 2, 4, 8] {
        for dense_cap in [0u64, u64::MAX] {
            for file_staging in [false, true] {
                let base = || {
                    let mut b = MiddlewareConfig::builder()
                        .scan_workers(workers)
                        .cc_dense_max_bytes(dense_cap)
                        .sampled_min_rows(0);
                    if file_staging {
                        b = b
                            .memory_caching(false)
                            .file_policy(FileStagingPolicy::Singleton);
                    }
                    b
                };
                let (t_exact, s_exact, _, _) = grow(
                    &schema,
                    &rows,
                    "class",
                    base().sampled_counting(0.0).build(),
                    &gc,
                );
                let (t_full, s_full, accepts, escalations) = grow(
                    &schema,
                    &rows,
                    "class",
                    base().sampled_counting(1.0).build(),
                    &gc,
                );
                assert!(
                    trees_structurally_equal(&t_full, &t_exact),
                    "fraction 1.0 diverged (workers {workers}, dense cap \
                     {dense_cap}, file {file_staging})"
                );
                assert_eq!(
                    logical(&s_full),
                    logical(&s_exact),
                    "fraction 1.0 changed counters (workers {workers}, \
                     dense cap {dense_cap}, file {file_staging})"
                );
                assert_eq!(s_full.sampled_nodes, 0, "no sampled plans at 1.0");
                assert_eq!(s_full.escalated_nodes, 0);
                assert_eq!((accepts, escalations), (0, 0));
            }
        }
    }
}

#[test]
fn seeded_sampled_runs_are_deterministic() {
    let (schema, rows, _) = small_tree_workload();
    let gc = GrowConfig::default();
    let cfg = |workers: usize| {
        MiddlewareConfig::builder()
            .sampled_counting(0.5)
            .sampled_min_rows(0)
            .scan_block_rows(64)
            .stage_extent_rows(64)
            .scan_workers(workers)
            .build()
    };
    let (t1, s1, a1, e1) = grow(&schema, &rows, "class", cfg(1), &gc);
    let (t2, s2, a2, e2) = grow(&schema, &rows, "class", cfg(1), &gc);
    assert!(trees_structurally_equal(&t1, &t2), "same seed, same tree");
    assert_eq!(logical(&s1), logical(&s2), "same seed, same counters");
    assert_eq!((a1, e1), (a2, e2));

    // The sampled path actually ran, and its counters reconcile: the
    // client saw every sampled fulfilment (accept or escalate), and rows
    // skipped were really saved relative to an exact scan.
    assert!(s1.sampled_nodes >= 1, "sampling engaged");
    assert_eq!(s1.sampled_nodes, a1 + e1, "every sampled node answered");
    assert_eq!(s1.escalated_nodes, e1);
    assert!(s1.sampled_rows_scanned > 0);
    assert!(s1.exact_rows_saved > 0, "some blocks were skipped");

    // Block admission is worker-count independent: more workers change
    // pipeline shape, never the tree.
    let (t4, s4, _, _) = grow(&schema, &rows, "class", cfg(4), &gc);
    assert!(trees_structurally_equal(&t1, &t4));
    assert_eq!(s1.sampled_rows_scanned, s4.sampled_rows_scanned);
    assert_eq!(s1.exact_rows_saved, s4.exact_rows_saved);
}

/// Twin attributes (`a1` an exact copy of `a0`) force every competing
/// split into a runner-up tie, so no confidence interval can separate
/// them: margin-thin by construction.
fn twin_workload() -> (Schema, Vec<Code>) {
    let schema = Schema::from_pairs(&[("a0", 2), ("a1", 2), ("noise", 4), ("class", 2)]);
    let mut rows = Vec::with_capacity(2_000 * 4);
    let mut state: u64 = 0x9e37_79b9_7f4a_7c15;
    for i in 0..2_000u64 {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let a = (i % 2) as Code;
        let noise = ((state >> 33) % 4) as Code;
        // class follows a0 with ~10% label noise.
        let flip = (state >> 7) % 10 == 0;
        let class = if flip { 1 - a } else { a };
        rows.extend_from_slice(&[a, a, noise, class]);
    }
    (schema, rows)
}

#[test]
fn margin_thin_data_escalates_and_matches_exact_tree() {
    let (schema, rows) = twin_workload();
    let gc = GrowConfig {
        min_rows: 50,
        ..GrowConfig::default()
    };
    let exact_cfg = MiddlewareConfig::builder().sampled_counting(0.0).build();
    let sampled_cfg = MiddlewareConfig::builder()
        .sampled_counting(0.25)
        .sampled_min_rows(0)
        .scan_block_rows(64)
        .stage_extent_rows(64)
        .build();
    let (t_exact, _, _, _) = grow(&schema, &rows, "class", exact_cfg, &gc);
    let (t_sampled, stats, _, escalations) = grow(&schema, &rows, "class", sampled_cfg, &gc);
    assert!(
        escalations >= 1,
        "twin attributes must defeat the confidence separation"
    );
    assert_eq!(stats.escalated_nodes, escalations);
    assert!(
        trees_structurally_equal(&t_sampled, &t_exact),
        "escalated growth diverged from the exact tree \
         ({} vs {} nodes)",
        t_sampled.len(),
        t_exact.len()
    );
    assert!(t_exact.len() >= 3, "workload must actually split");
}
