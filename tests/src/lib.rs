//! Shared fixtures for the cross-crate integration tests.

use scaleclass_datagen::{census, random_tree, CensusParams, RandomTreeParams};
use scaleclass_sqldb::{Code, Database, Schema};

/// A small random-tree workload (deterministic).
pub fn small_tree_workload() -> (Schema, Vec<Code>, u16) {
    let d = random_tree::generate(&RandomTreeParams {
        leaves: 30,
        attributes: 8,
        mean_values: 4.0,
        values_stddev: 0.0,
        classes: 4,
        cases_per_leaf: 40.0,
        ..RandomTreeParams::default()
    });
    (d.schema.clone(), d.rows.clone(), d.class_col)
}

/// A small census-like workload (deterministic).
pub fn small_census_workload() -> (Schema, Vec<Code>, u16) {
    let d = census::generate(&CensusParams {
        rows: 4_000,
        seed: 42,
    });
    (d.schema.clone(), d.rows.clone(), d.class_col)
}

/// Load flat rows into a fresh database under table name `d`.
pub fn load(schema: &Schema, rows: &[Code]) -> Database {
    scaleclass_datagen::into_database(schema.clone(), rows, "d")
}
